//! The segmented write-ahead log.
//!
//! Durability point of the store: an update batch is recoverable once its
//! WAL record is on disk. The log is a directory of segment files
//! (`wal-00000042.seg`), each a run of self-delimiting records reusing the
//! framing discipline of `dsg_sketch::wire` — length-prefixed payloads
//! guarded by an FNV-1a checksum:
//!
//! ```text
//! offset  size  field
//! 0       4     record magic "DSGR"
//! 4       4     payload length in bytes (little-endian u32)
//! 8       8     FNV-1a checksum of bytes 0..8 (header guard, little-endian u64)
//! 16      8     FNV-1a checksum of the payload (little-endian u64)
//! 24      …     payload
//! ```
//!
//! The header guard exists so a corrupted *length* field cannot be
//! mistaken for a torn tail: without it, a bit flip in `length` that
//! makes the declared payload run past end-of-file would look exactly
//! like a half-written record and be silently truncated — along with
//! every durable record after it. With the guard, a record whose first
//! 16 bytes are present but inconsistent is *corruption* (loud error);
//! only a record whose header guard validates (or whose header is
//! itself cut short) can be classified as torn.
//!
//! The payload's first byte is a record kind: `1` = update batch (count +
//! fixed 17-byte encoded [`StreamUpdate`]s), `2` = epoch-advance marker
//! (the epoch number it produced). All integers little-endian.
//!
//! **Torn tails.** A crash mid-append leaves a partial final record. Both
//! the read path ([`Wal::replay`]) and the append path ([`Wal::open`])
//! recognize an *incomplete* trailing record in the **last** segment —
//! header cut short, or a declared payload extending past end-of-file —
//! and truncate it (logically for replay, physically for open) instead of
//! erroring: the record never became durable, so dropping it recovers
//! exactly the durable prefix. A record that is fully present but fails
//! its checksum (or decodes to garbage) is *corruption*, not a torn
//! write, and is reported as [`StoreError::CorruptLog`] — silently
//! skipping it could resurface a stream the sketches never saw.
//!
//! **Sync policy.** Appends go through a buffered writer;
//! [`SyncPolicy`] decides when the buffer is flushed and fsync'd:
//! every batch (strongest, slowest), every N batches (bounded loss
//! window), or manually (fastest; the caller owns the loss window via
//! [`Wal::sync`]).

use crate::StoreError;
use dsg_graph::{Edge, StreamUpdate};
use dsg_telemetry::{Counter, Histogram};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Record magic: identifies a dynamic-stream-graph WAL record.
pub const RECORD_MAGIC: [u8; 4] = *b"DSGR";

/// Size of the fixed record header in bytes.
pub const RECORD_HEADER_BYTES: usize = 24;

/// Prefix of the header covered by the header guard (magic + length).
const RECORD_GUARD_BYTES: usize = 16;

/// Payload kind tag of an update-batch record.
const KIND_BATCH: u8 = 1;
/// Payload kind tag of an epoch-advance marker record.
const KIND_EPOCH: u8 = 2;

/// Bytes of one encoded [`StreamUpdate`]: u (u32), v (u32), delta (i8),
/// weight (f64 bits).
pub(crate) const UPDATE_BYTES: usize = 17;

/// When the WAL flushes and fsyncs its buffered appends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Flush + fsync after every appended record: nothing acknowledged is
    /// ever lost, at one fsync per batch.
    EveryBatch,
    /// Flush + fsync after every `N` appended records: at most `N - 1`
    /// acknowledged batches can be lost to a crash.
    EveryN(u32),
    /// Only on explicit [`Wal::sync`], rotation, or close: the caller
    /// owns the loss window.
    Manual,
}

impl SyncPolicy {
    /// The `policy` label value this policy reports under in telemetry
    /// series (e.g. `dsg_store_wal_fsync_nanos{policy="every_batch"}`).
    pub fn label(&self) -> &'static str {
        match self {
            SyncPolicy::EveryBatch => "every_batch",
            SyncPolicy::EveryN(_) => "every_n",
            SyncPolicy::Manual => "manual",
        }
    }
}

/// Telemetry handles a [`Wal`] records through. `Default` is all-no-op;
/// the durable layer installs registry-backed handles per tenant via
/// [`Wal::set_metrics`] (the fsync series carries the tenant's
/// [`SyncPolicy`] as a `policy` label, baked in at registration).
#[derive(Debug, Clone, Default)]
pub struct WalMetrics {
    /// Full append latency (encode + buffered write + policy-driven
    /// sync), nanoseconds.
    pub append_nanos: Histogram,
    /// Flush + fsync latency, nanoseconds — one sample per durability
    /// point, whichever policy triggered it.
    pub fsync_nanos: Histogram,
    /// On-disk record bytes appended (headers included).
    pub appended_bytes: Counter,
    /// Segment rollovers (size-triggered and checkpoint-triggered).
    pub segments_rotated: Counter,
    /// Segment files deleted by post-checkpoint compaction.
    pub segments_compacted: Counter,
}

/// Shape of the log: sync cadence and segment rollover size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalConfig {
    /// When appends are made durable.
    pub sync: SyncPolicy,
    /// Rotate to a fresh segment once the current one reaches this many
    /// bytes (checked before each append; records are never split across
    /// segments).
    pub segment_bytes: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        Self {
            sync: SyncPolicy::EveryBatch,
            segment_bytes: 4 << 20,
        }
    }
}

/// A position in the log: everything strictly before it is a durable
/// prefix. Ordered lexicographically (segment, then offset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct WalPosition {
    /// Segment sequence number.
    pub segment: u64,
    /// Byte offset within that segment.
    pub offset: u64,
}

impl WalPosition {
    /// The very start of the log.
    pub const START: WalPosition = WalPosition {
        segment: 0,
        offset: 0,
    };
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// An ingested update batch.
    Batch(Vec<StreamUpdate>),
    /// An epoch advance, carrying the epoch number it produced (an
    /// integrity cross-check for replay).
    EpochAdvance(u64),
}

/// What a replay saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Complete, valid records delivered to the callback.
    pub records: usize,
    /// Where the replayed prefix ends.
    pub end: WalPosition,
    /// Whether a torn (incomplete) final record was dropped.
    pub torn_tail: bool,
}

/// The append handle to a segmented write-ahead log directory.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    config: WalConfig,
    writer: BufWriter<File>,
    segment: u64,
    offset: u64,
    appends_since_sync: u32,
    metrics: WalMetrics,
}

/// Segment file name for sequence number `seq`.
fn segment_name(seq: u64) -> String {
    format!("wal-{seq:08}.seg")
}

/// Parses a segment file name back to its sequence number.
fn parse_segment_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("wal-")?.strip_suffix(".seg")?;
    if rest.len() != 8 || !rest.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    rest.parse().ok()
}

/// Lists the segment files in `dir`, sorted by sequence number.
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut segments = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_segment_name) {
            segments.push((seq, entry.path()));
        }
    }
    segments.sort_unstable();
    Ok(segments)
}

/// Directory fsync, so segment creations and renames are themselves
/// durable (POSIX requires syncing the parent directory). Shared with
/// the checkpoint module's atomic rename. Platforms that cannot *open*
/// a directory for syncing are tolerated; a failed `sync_all` on an
/// opened directory is a real durability failure and is surfaced —
/// swallowing it would let a checkpoint report success and compact away
/// segments whose covering rename may never reach disk.
pub(crate) fn fsync_dir(dir: &Path) -> Result<(), StoreError> {
    if let Ok(d) = File::open(dir) {
        d.sync_all()?;
    }
    Ok(())
}

/// FNV-1a, identical to `dsg_sketch::wire::checksum` (re-exported through
/// it so WAL records and sketch frames share one corruption detector).
fn checksum(bytes: &[u8]) -> u64 {
    dsg_sketch::wire::checksum(bytes)
}

/// Encodes one update into the fixed 17-byte layout of WAL batch
/// records.
pub(crate) fn put_update(out: &mut Vec<u8>, up: &StreamUpdate) {
    out.extend_from_slice(&up.edge.u().to_le_bytes());
    out.extend_from_slice(&up.edge.v().to_le_bytes());
    out.push(up.delta as u8);
    out.extend_from_slice(&up.weight.to_bits().to_le_bytes());
}

/// The single source of truth for what the log accepts: the write side
/// ([`crate::DurableGraph::apply`]) refuses anything this refuses, so the
/// log can never hold a record its own replay calls corruption.
pub(crate) fn is_replayable(up: &StreamUpdate) -> bool {
    up.edge.u() < up.edge.v() && (up.delta == 1 || up.delta == -1) && up.weight.is_finite()
}

/// Decodes one update; `None` on a structural violation (the caller turns
/// that into a [`StoreError::CorruptLog`] with position info).
pub(crate) fn get_update(bytes: &[u8]) -> Option<StreamUpdate> {
    let u = u32::from_le_bytes(bytes[0..4].try_into().ok()?);
    let v = u32::from_le_bytes(bytes[4..8].try_into().ok()?);
    if u >= v {
        return None; // Edge::new would swap/assert; reject before it
    }
    let delta = bytes[8] as i8;
    let weight = f64::from_bits(u64::from_le_bytes(bytes[9..17].try_into().ok()?));
    let up = StreamUpdate {
        edge: Edge::new(u, v),
        delta,
        weight,
    };
    if !is_replayable(&up) {
        return None;
    }
    Some(up)
}

/// Builds the full on-disk bytes of one record (header + payload).
fn encode_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER_BYTES + payload.len());
    out.extend_from_slice(&RECORD_MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let guard = checksum(&out[0..8]);
    out.extend_from_slice(&guard.to_le_bytes());
    out.extend_from_slice(&checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Encodes a batch record payload.
fn encode_batch(updates: &[StreamUpdate]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(1 + 4 + updates.len() * UPDATE_BYTES);
    payload.push(KIND_BATCH);
    payload.extend_from_slice(&(updates.len() as u32).to_le_bytes());
    for up in updates {
        put_update(&mut payload, up);
    }
    payload
}

/// Encodes an epoch-marker record payload.
fn encode_epoch(epoch: u64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(9);
    payload.push(KIND_EPOCH);
    payload.extend_from_slice(&epoch.to_le_bytes());
    payload
}

/// Decodes a (checksum-verified) record payload.
fn decode_payload(payload: &[u8]) -> Result<WalRecord, &'static str> {
    match payload.first().copied() {
        Some(KIND_BATCH) => {
            if payload.len() < 5 {
                return Err("batch record shorter than its count field");
            }
            let count = u32::from_le_bytes(payload[1..5].try_into().map_err(|_| "bad count field")?)
                as usize;
            let body = &payload[5..];
            if body.len() != count * UPDATE_BYTES {
                return Err("batch body length disagrees with its count");
            }
            let mut updates = Vec::with_capacity(count);
            for chunk in body.chunks_exact(UPDATE_BYTES) {
                updates.push(get_update(chunk).ok_or("malformed stream update")?);
            }
            Ok(WalRecord::Batch(updates))
        }
        Some(KIND_EPOCH) => {
            if payload.len() != 9 {
                return Err("epoch marker has wrong length");
            }
            let epoch =
                u64::from_le_bytes(payload[1..9].try_into().map_err(|_| "bad epoch field")?);
            Ok(WalRecord::EpochAdvance(epoch))
        }
        Some(_) => Err("unknown record kind"),
        None => Err("empty record payload"),
    }
}

/// How a scan classified the bytes at one offset of a segment.
enum Scanned {
    /// A complete, valid record of the given total on-disk length.
    Record(WalRecord, usize),
    /// The bytes cannot be a complete record (header or payload cut off
    /// by end-of-file) — a torn tail if this is the last segment.
    Incomplete,
    /// A complete record that fails validation: corruption.
    Corrupt(&'static str),
}

/// Classifies the bytes starting at `at` inside a fully read segment.
fn scan_record(bytes: &[u8], at: usize) -> Scanned {
    let rest = &bytes[at..];
    // Fewer than 16 bytes cannot even be judged: the header guard is
    // not fully on disk, so this can only be a torn header.
    if rest.len() < RECORD_GUARD_BYTES {
        return Scanned::Incomplete;
    }
    if rest[0..4] != RECORD_MAGIC {
        // A run of zeros to end-of-file is the classic crash artifact of
        // a size-extending append whose data blocks never hit disk (the
        // inode grew, the bytes did not): no record was ever there, so
        // this is a torn tail, not corruption. Anything non-zero under a
        // wrong magic IS corruption.
        if rest.iter().all(|&b| b == 0) {
            return Scanned::Incomplete;
        }
        return Scanned::Corrupt("bad record magic");
    }
    // Validate the header guard BEFORE trusting the length field: a
    // flipped length bit must read as corruption, not as a torn tail
    // (truncating at it would silently drop durable records behind it).
    let guard = u64::from_le_bytes([
        rest[8], rest[9], rest[10], rest[11], rest[12], rest[13], rest[14], rest[15],
    ]);
    if checksum(&rest[0..8]) != guard {
        return Scanned::Corrupt("header checksum mismatch");
    }
    if rest.len() < RECORD_HEADER_BYTES {
        return Scanned::Incomplete;
    }
    let len = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]) as usize;
    let Some(payload) = rest.get(RECORD_HEADER_BYTES..RECORD_HEADER_BYTES + len) else {
        // The (guarded, trustworthy) length runs past end-of-file: a
        // genuinely half-written payload.
        return Scanned::Incomplete;
    };
    let sum = u64::from_le_bytes([
        rest[16], rest[17], rest[18], rest[19], rest[20], rest[21], rest[22], rest[23],
    ]);
    if checksum(payload) != sum {
        return Scanned::Corrupt("payload checksum mismatch");
    }
    match decode_payload(payload) {
        Ok(record) => Scanned::Record(record, RECORD_HEADER_BYTES + len),
        Err(reason) => Scanned::Corrupt(reason),
    }
}

impl Wal {
    /// Opens (or creates) the log directory for appending. If the last
    /// segment ends in a torn record — a partial append from a crash —
    /// the tail is **physically truncated** to the last complete record
    /// before the append handle is positioned, so new records never land
    /// after garbage.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures;
    /// [`StoreError::CorruptLog`] if the last segment contains a fully
    /// present but invalid record (corruption is never silently dropped).
    pub fn open(dir: &Path, config: WalConfig) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir)?;
        let segments = list_segments(dir)?;
        let (segment, path) = match segments.last() {
            Some((seq, path)) => (*seq, path.clone()),
            None => {
                let path = dir.join(segment_name(0));
                File::create(&path)?.sync_all()?;
                fsync_dir(dir)?;
                (0, path)
            }
        };
        // Scan the last segment for a torn tail and truncate it away.
        let bytes = std::fs::read(&path)?;
        let mut at = 0usize;
        loop {
            match scan_record(&bytes, at) {
                Scanned::Record(_, len) => at += len,
                Scanned::Incomplete => break,
                Scanned::Corrupt(reason) => {
                    return Err(StoreError::CorruptLog {
                        segment,
                        offset: at as u64,
                        reason,
                    })
                }
            }
            if at == bytes.len() {
                break;
            }
        }
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        if at < bytes.len() {
            file.set_len(at as u64)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(at as u64))?;
        Ok(Self {
            dir: dir.to_path_buf(),
            config,
            writer: BufWriter::new(file),
            segment,
            offset: at as u64,
            appends_since_sync: 0,
            metrics: WalMetrics::default(),
        })
    }

    /// Installs telemetry handles; the log starts with no-op ones.
    pub fn set_metrics(&mut self, metrics: WalMetrics) {
        self.metrics = metrics;
    }

    /// The position right after the last appended record — the next
    /// record will start here.
    pub fn position(&self) -> WalPosition {
        WalPosition {
            segment: self.segment,
            offset: self.offset,
        }
    }

    /// The log's configuration.
    pub fn config(&self) -> &WalConfig {
        &self.config
    }

    /// Appends an update-batch record; durable according to the
    /// [`SyncPolicy`]. Returns the position right after the record.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the write or sync fails.
    pub fn append_batch(&mut self, updates: &[StreamUpdate]) -> Result<WalPosition, StoreError> {
        self.append_payload(&encode_batch(updates))
    }

    /// Appends an epoch-advance marker; durable according to the
    /// [`SyncPolicy`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the write or sync fails.
    pub fn append_epoch_marker(&mut self, epoch: u64) -> Result<WalPosition, StoreError> {
        self.append_payload(&encode_epoch(epoch))
    }

    fn append_payload(&mut self, payload: &[u8]) -> Result<WalPosition, StoreError> {
        if self.offset >= self.config.segment_bytes {
            self.rotate()?;
        }
        let timer = self.metrics.append_nanos.start_timer();
        let record = encode_record(payload);
        self.writer.write_all(&record)?;
        self.offset += record.len() as u64;
        self.appends_since_sync += 1;
        self.metrics.appended_bytes.add(record.len() as u64);
        match self.config.sync {
            SyncPolicy::EveryBatch => self.sync()?,
            SyncPolicy::EveryN(n) => {
                if self.appends_since_sync >= n.max(1) {
                    self.sync()?;
                }
            }
            SyncPolicy::Manual => {}
        }
        drop(timer);
        Ok(self.position())
    }

    /// Flushes buffered appends and fsyncs the current segment — the
    /// manual durability point.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the flush or sync fails.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        let _timer = self.metrics.fsync_nanos.start_timer();
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Syncs and closes the current segment and starts a fresh one.
    /// Returns the start position of the new segment — the natural WAL
    /// position for a checkpoint, because compaction can then drop every
    /// earlier segment whole.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if closing the old segment or creating the new
    /// one fails.
    pub fn rotate(&mut self) -> Result<WalPosition, StoreError> {
        self.sync()?;
        // Create the new segment BEFORE mutating any position state: a
        // failed create must leave the handle appending to (and
        // reporting positions in) the old, still-existing segment.
        let next = self.segment + 1;
        let path = self.dir.join(segment_name(next));
        let file = File::create(&path)?;
        file.sync_all()?;
        fsync_dir(&self.dir)?;
        self.writer = BufWriter::new(file);
        self.segment = next;
        self.offset = 0;
        self.metrics.segments_rotated.inc();
        Ok(self.position())
    }

    /// Deletes every segment strictly older than `pos.segment` — the
    /// compaction step after a checkpoint at `pos` lands: those records
    /// are covered by the checkpoint and replay will never read them.
    /// Returns how many segment files were removed.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if listing or deleting fails.
    pub fn compact_before(&mut self, pos: WalPosition) -> Result<usize, StoreError> {
        let mut removed = 0;
        for (seq, path) in list_segments(&self.dir)? {
            if seq < pos.segment {
                std::fs::remove_file(&path)?;
                removed += 1;
            }
        }
        if removed > 0 {
            fsync_dir(&self.dir)?;
            self.metrics.segments_compacted.add(removed as u64);
        }
        Ok(removed)
    }

    /// Replays every complete record at or after `from`, in order,
    /// calling `f` on each together with the record's start position (so
    /// callers can report accurate positions in their own errors).
    /// Read-only: the directory is not modified. An incomplete trailing
    /// record in the last segment is dropped (see the module docs on torn
    /// tails) and reported via [`ReplaySummary::torn_tail`]; anything
    /// else invalid is [`StoreError::CorruptLog`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`], [`StoreError::CorruptLog`], or the first error
    /// returned by `f` (which aborts the replay).
    pub fn replay<F>(dir: &Path, from: WalPosition, mut f: F) -> Result<ReplaySummary, StoreError>
    where
        F: FnMut(WalRecord, WalPosition) -> Result<(), StoreError>,
    {
        let segments = list_segments(dir)?;
        let mut records = 0usize;
        let mut end = from;
        let mut torn_tail = false;
        let last_seq = segments.last().map(|(seq, _)| *seq);
        // The replayed range must exist and be gap-free: a missing
        // segment holds durable records, and skipping it would silently
        // reconstruct a wrong prefix (the one failure class this module
        // promises to make loud).
        let mut expected = from.segment;
        for (seq, path) in &segments {
            if *seq < from.segment {
                continue;
            }
            if *seq != expected {
                return Err(StoreError::CorruptLog {
                    segment: expected,
                    offset: 0,
                    reason: "missing WAL segment in replay range",
                });
            }
            expected += 1;
            let is_last = Some(*seq) == last_seq;
            let bytes = read_file(path)?;
            let mut at = if *seq == from.segment {
                from.offset as usize
            } else {
                0
            };
            if at > bytes.len() {
                return Err(StoreError::CorruptLog {
                    segment: *seq,
                    offset: at as u64,
                    reason: "replay start position past end of segment",
                });
            }
            while at < bytes.len() {
                match scan_record(&bytes, at) {
                    Scanned::Record(record, len) => {
                        f(
                            record,
                            WalPosition {
                                segment: *seq,
                                offset: at as u64,
                            },
                        )?;
                        records += 1;
                        at += len;
                        end = WalPosition {
                            segment: *seq,
                            offset: at as u64,
                        };
                    }
                    Scanned::Incomplete if is_last => {
                        torn_tail = true;
                        break;
                    }
                    Scanned::Incomplete => {
                        return Err(StoreError::CorruptLog {
                            segment: *seq,
                            offset: at as u64,
                            reason: "incomplete record before the last segment",
                        })
                    }
                    Scanned::Corrupt(reason) => {
                        return Err(StoreError::CorruptLog {
                            segment: *seq,
                            offset: at as u64,
                            reason,
                        })
                    }
                }
            }
            if end.segment < *seq {
                // An empty (or fully skipped) later segment still moves the
                // end position forward.
                end = WalPosition {
                    segment: *seq,
                    offset: at as u64,
                };
            }
        }
        if expected == from.segment {
            // Nothing at or after `from` existed at all — the segment a
            // checkpoint points at is created (and fsync'd) before the
            // checkpoint lands, so its absence is damage, not emptiness.
            return Err(StoreError::CorruptLog {
                segment: from.segment,
                offset: 0,
                reason: "replay start segment does not exist",
            });
        }
        Ok(ReplaySummary {
            records,
            end,
            torn_tail,
        })
    }
}

/// Reads a whole file (replay is per-segment and segments are bounded by
/// `segment_bytes`, so this is fine).
fn read_file(path: &Path) -> Result<Vec<u8>, StoreError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    Ok(bytes)
}

impl Drop for Wal {
    /// Best-effort final flush: a clean process exit should not lose
    /// buffered records just because the policy was [`SyncPolicy::Manual`].
    fn drop(&mut self) {
        let _ = self.sync();
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code may unwrap freely

    use super::*;
    use crate::ScratchDir;

    fn batch(range: std::ops::Range<u32>) -> Vec<StreamUpdate> {
        range.map(|v| StreamUpdate::insert(v, v + 1)).collect()
    }

    fn collect(dir: &Path, from: WalPosition) -> (Vec<WalRecord>, ReplaySummary) {
        let mut records = Vec::new();
        let summary = Wal::replay(dir, from, |r, _| {
            records.push(r);
            Ok(())
        })
        .unwrap();
        (records, summary)
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let dir = ScratchDir::new("wal-roundtrip");
        let mut wal = Wal::open(dir.path(), WalConfig::default()).unwrap();
        wal.append_batch(&batch(0..5)).unwrap();
        wal.append_epoch_marker(1).unwrap();
        wal.append_batch(&batch(5..7)).unwrap();
        drop(wal);
        let (records, summary) = collect(dir.path(), WalPosition::START);
        assert_eq!(records.len(), 3);
        assert_eq!(records[0], WalRecord::Batch(batch(0..5)));
        assert_eq!(records[1], WalRecord::EpochAdvance(1));
        assert_eq!(records[2], WalRecord::Batch(batch(5..7)));
        assert!(!summary.torn_tail);
    }

    #[test]
    fn reopen_appends_after_existing_records() {
        let dir = ScratchDir::new("wal-reopen");
        let mut wal = Wal::open(dir.path(), WalConfig::default()).unwrap();
        wal.append_batch(&batch(0..3)).unwrap();
        drop(wal);
        let mut wal = Wal::open(dir.path(), WalConfig::default()).unwrap();
        wal.append_batch(&batch(3..6)).unwrap();
        drop(wal);
        let (records, _) = collect(dir.path(), WalPosition::START);
        assert_eq!(records.len(), 2);
        assert_eq!(records[1], WalRecord::Batch(batch(3..6)));
    }

    #[test]
    fn rotation_and_replay_from_position() {
        let dir = ScratchDir::new("wal-rotate");
        let mut wal = Wal::open(dir.path(), WalConfig::default()).unwrap();
        wal.append_batch(&batch(0..4)).unwrap();
        let pos = wal.rotate().unwrap();
        assert_eq!(
            pos,
            WalPosition {
                segment: 1,
                offset: 0
            }
        );
        wal.append_batch(&batch(4..8)).unwrap();
        drop(wal);
        let (records, _) = collect(dir.path(), pos);
        assert_eq!(records, vec![WalRecord::Batch(batch(4..8))]);
    }

    #[test]
    fn tiny_segments_rotate_automatically() {
        let dir = ScratchDir::new("wal-tinysegs");
        let config = WalConfig {
            segment_bytes: 64,
            ..WalConfig::default()
        };
        let mut wal = Wal::open(dir.path(), config).unwrap();
        for i in 0..10u32 {
            wal.append_batch(&batch(i..i + 1)).unwrap();
        }
        drop(wal);
        assert!(
            list_segments(dir.path()).unwrap().len() > 1,
            "64-byte segments must have rotated"
        );
        let (records, _) = collect(dir.path(), WalPosition::START);
        assert_eq!(records.len(), 10);
    }

    #[test]
    fn compaction_drops_segments_before_position() {
        let dir = ScratchDir::new("wal-compact");
        let mut wal = Wal::open(dir.path(), WalConfig::default()).unwrap();
        wal.append_batch(&batch(0..4)).unwrap();
        wal.rotate().unwrap();
        wal.append_batch(&batch(4..6)).unwrap();
        let pos = wal.rotate().unwrap();
        wal.append_batch(&batch(6..9)).unwrap();
        let removed = wal.compact_before(pos).unwrap();
        drop(wal);
        assert_eq!(removed, 2);
        let (records, _) = collect(dir.path(), pos);
        assert_eq!(records, vec![WalRecord::Batch(batch(6..9))]);
    }

    #[test]
    fn torn_tail_is_truncated_not_an_error() {
        let dir = ScratchDir::new("wal-torn");
        let mut wal = Wal::open(dir.path(), WalConfig::default()).unwrap();
        wal.append_batch(&batch(0..4)).unwrap();
        let before = wal.position();
        wal.append_batch(&batch(4..9)).unwrap();
        drop(wal);
        // Tear the final record: chop 3 bytes off the segment.
        let (_, path) = list_segments(dir.path()).unwrap().pop().unwrap();
        let len = std::fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        // Replay drops the torn record and reports it.
        let (records, summary) = collect(dir.path(), WalPosition::START);
        assert_eq!(records, vec![WalRecord::Batch(batch(0..4))]);
        assert!(summary.torn_tail);
        assert_eq!(summary.end, before);
        // Re-opening truncates physically and appends continue cleanly.
        let mut wal = Wal::open(dir.path(), WalConfig::default()).unwrap();
        assert_eq!(wal.position(), before);
        wal.append_batch(&batch(9..11)).unwrap();
        drop(wal);
        let (records, summary) = collect(dir.path(), WalPosition::START);
        assert_eq!(
            records,
            vec![
                WalRecord::Batch(batch(0..4)),
                WalRecord::Batch(batch(9..11))
            ]
        );
        assert!(!summary.torn_tail);
    }

    #[test]
    fn complete_but_corrupt_record_is_an_error() {
        let dir = ScratchDir::new("wal-corrupt");
        let mut wal = Wal::open(dir.path(), WalConfig::default()).unwrap();
        wal.append_batch(&batch(0..4)).unwrap();
        wal.append_batch(&batch(4..8)).unwrap();
        drop(wal);
        // Flip one payload byte of the FIRST record: fully present, bad sum.
        let (_, path) = list_segments(dir.path()).unwrap().pop().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[RECORD_HEADER_BYTES + 2] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let err = Wal::replay(dir.path(), WalPosition::START, |_, _| Ok(())).unwrap_err();
        assert!(matches!(err, StoreError::CorruptLog { offset: 0, .. }));
        // Opening for append refuses too: appends must not land after
        // corruption.
        assert!(matches!(
            Wal::open(dir.path(), WalConfig::default()),
            Err(StoreError::CorruptLog { .. })
        ));
    }

    #[test]
    fn zero_filled_tail_is_a_torn_tail_not_corruption() {
        let dir = ScratchDir::new("wal-zerotail");
        let mut wal = Wal::open(dir.path(), WalConfig::default()).unwrap();
        wal.append_batch(&batch(0..4)).unwrap();
        wal.append_batch(&batch(4..7)).unwrap();
        let before = wal.position();
        drop(wal);
        // Crash artifact: the inode grew but the appended data blocks
        // never hit disk — the file ends in zeros.
        let (_, path) = list_segments(dir.path()).unwrap().pop().unwrap();
        let len = std::fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len + 64)
            .unwrap();
        let (records, summary) = collect(dir.path(), WalPosition::START);
        assert_eq!(records.len(), 2, "both real records survive");
        assert!(summary.torn_tail, "zero run reads as a torn tail");
        assert_eq!(summary.end, before);
        // Re-opening truncates the zeros and appends continue cleanly.
        let mut wal = Wal::open(dir.path(), WalConfig::default()).unwrap();
        assert_eq!(wal.position(), before);
        wal.append_batch(&batch(7..9)).unwrap();
        drop(wal);
        let (records, summary) = collect(dir.path(), WalPosition::START);
        assert_eq!(records.len(), 3);
        assert!(!summary.torn_tail);
    }

    #[test]
    fn missing_segments_fail_replay_loudly() {
        let dir = ScratchDir::new("wal-gap");
        let mut wal = Wal::open(dir.path(), WalConfig::default()).unwrap();
        wal.append_batch(&batch(0..3)).unwrap();
        wal.rotate().unwrap();
        wal.append_batch(&batch(3..6)).unwrap();
        wal.rotate().unwrap();
        wal.append_batch(&batch(6..9)).unwrap();
        drop(wal);
        // Delete the MIDDLE segment: its durable records must not be
        // silently skipped.
        let segments = list_segments(dir.path()).unwrap();
        std::fs::remove_file(&segments[1].1).unwrap();
        let err = Wal::replay(dir.path(), WalPosition::START, |_, _| Ok(())).unwrap_err();
        assert!(matches!(
            err,
            StoreError::CorruptLog {
                segment: 1,
                reason: "missing WAL segment in replay range",
                ..
            }
        ));
        // A replay whose start segment does not exist at all is equally
        // loud (a checkpoint's segment is created before it lands).
        let err = Wal::replay(
            dir.path(),
            WalPosition {
                segment: 9,
                offset: 0,
            },
            |_, _| Ok(()),
        )
        .unwrap_err();
        assert!(matches!(err, StoreError::CorruptLog { segment: 9, .. }));
    }

    #[test]
    fn corrupt_length_field_is_an_error_not_a_torn_tail() {
        let dir = ScratchDir::new("wal-lenflip");
        let mut wal = Wal::open(dir.path(), WalConfig::default()).unwrap();
        wal.append_batch(&batch(0..4)).unwrap();
        wal.append_batch(&batch(4..8)).unwrap();
        drop(wal);
        // Flip a LENGTH byte of the first record so its declared payload
        // would run past end-of-file. Without the header guard this
        // would be misread as a torn tail and the second (perfectly
        // durable) record silently truncated away with it.
        let (_, path) = list_segments(dir.path()).unwrap().pop().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[5] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let err = Wal::replay(dir.path(), WalPosition::START, |_, _| Ok(())).unwrap_err();
        assert!(matches!(err, StoreError::CorruptLog { offset: 0, .. }));
        assert!(matches!(
            Wal::open(dir.path(), WalConfig::default()),
            Err(StoreError::CorruptLog { .. })
        ));
    }

    #[test]
    fn manual_sync_policy_flushes_on_drop_and_demand() {
        let dir = ScratchDir::new("wal-manual");
        let config = WalConfig {
            sync: SyncPolicy::Manual,
            ..WalConfig::default()
        };
        let mut wal = Wal::open(dir.path(), config).unwrap();
        wal.append_batch(&batch(0..2)).unwrap();
        wal.sync().unwrap();
        wal.append_batch(&batch(2..4)).unwrap();
        drop(wal); // drop flushes the second batch
        let (records, _) = collect(dir.path(), WalPosition::START);
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn weights_and_deletions_survive_the_encoding() {
        let dir = ScratchDir::new("wal-weights");
        let mut wal = Wal::open(dir.path(), WalConfig::default()).unwrap();
        let mut ups = vec![StreamUpdate::insert(3, 9), StreamUpdate::delete(3, 9)];
        ups[0].weight = 2.5;
        ups[1].weight = 2.5;
        wal.append_batch(&ups).unwrap();
        drop(wal);
        let (records, _) = collect(dir.path(), WalPosition::START);
        assert_eq!(records, vec![WalRecord::Batch(ups)]);
    }
}
