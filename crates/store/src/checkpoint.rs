//! Sketch checkpoints: the full durable state of one tenant in one
//! atomically-renamed file.
//!
//! A checkpoint is a `dsg_sketch::wire` frame of kind
//! [`wire::KIND_CHECKPOINT_V3`] — a frame *of* frames. Its payload holds
//! the graph's configuration, the epoch counter, the WAL position the
//! checkpoint covers, and **per shard** the worker's true sketch next to
//! the compacted net-edge segment of the edges that shard owns under the
//! engine's hash partition ([`dsg_engine::shard_for`]):
//!
//! ```text
//! n, seed, shards, batch_size, spanner_k (u64 each), cut_eps (f64 bits)
//! epoch, total_updates (u64 each)
//! wal segment, wal offset (u64 each)
//! shard count (u64); then per shard, in shard order:
//!   net segment: count (u64) + 20-byte entries (u, v: u32;
//!       multiplicity: u32; weight: f64 bits), strictly sorted by edge,
//!       every entry routed to this shard by `shard_for`
//!   sketch: length-prefixed AGM snapshot frame
//! ```
//!
//! Because linear sketches *are* the stream state, this file plus the WAL
//! tail after [`Checkpoint::wal_pos`] reconstructs the tenant exactly —
//! recovery re-seeds each worker's sketch *and* compacted log from its
//! own frame pair, feeds the tail through the restored engine and, by
//! linearity, lands bit-identically where an uninterrupted run would be.
//! The segments ride along because the service's multi-pass epoch
//! artifacts (spanner oracle, KP12 sparsifier) rebuild from the stream's
//! net edge multiset — assembled by concatenating the disjoint shard
//! segments — which, again by linearity, is *all* of the stream they can
//! observe. With hash-partitioned routing the per-shard frames are
//! canonical by construction (each is a deterministic function of the net
//! sub-stream its shard owns), so checkpoint size is O(live graph), not
//! O(stream length) (see DESIGN.md, "Partitioning by edge identity"),
//! and the sorted-entry encoding makes equal states produce equal bytes.
//!
//! Two retired layouts are rejected with the loud, typed
//! [`StoreError::LegacyCheckpoint`] — never misread, never silently
//! skipped: kind 9 nested the raw update log (O(stream length) on disk),
//! and kind 10 carried one global segment next to "canonical
//! factorization" shard frames (merged summary in shard 0, zero sketches
//! elsewhere — the round-robin era's workaround for churn residue, made
//! unnecessary by edge partitioning).
//!
//! **Atomicity.** [`write_checkpoint`] writes `checkpoint.tmp`, fsyncs
//! it, renames it over [`CHECKPOINT_FILE`], and fsyncs the directory — a
//! crash leaves either the old checkpoint or the new one, never a torn
//! hybrid. Corruption on the read side is caught by the frame checksum
//! (and the nested per-shard frame checksums) through the same
//! [`wire::open_frame`] validation path as any shard snapshot.

use crate::wal::{self, WalPosition};
use crate::StoreError;
use dsg_agm::AgmSketch;
use dsg_engine::shard_for;
use dsg_graph::{Edge, NetEdge, NetMultiset};
use dsg_service::{GraphConfig, PersistedShard};
use dsg_sketch::{wire, LinearSketch, WireError};
use std::fs::File;
use std::path::Path;

/// File name of a tenant's checkpoint inside its directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.dsg";

/// Temporary name a checkpoint is staged under before the atomic rename.
const CHECKPOINT_TMP: &str = "checkpoint.tmp";

/// The durable state of one tenant at a capture point: everything
/// [`read_checkpoint`] needs to rebuild the graph, plus the WAL position
/// from which replay must continue.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// The graph's configuration (also the restore topology: one sketch
    /// per configured shard).
    pub config: GraphConfig,
    /// Epoch counter at the capture point.
    pub epoch: u64,
    /// Updates ingested up to the capture point.
    pub total_updates: u64,
    /// WAL records strictly before this position are covered by the
    /// checkpoint; replay resumes here.
    pub wal_pos: WalPosition,
    /// Every shard's capture-point state in shard order: its true sketch
    /// next to the sealed net segment of the edges it owns. O(live graph)
    /// total — the whole per-worker and multi-pass state a restore needs.
    pub shards: Vec<PersistedShard>,
}

impl Checkpoint {
    /// Assembles the epoch-wide net segment by concatenating the
    /// (disjoint, routing-partitioned) shard segments.
    ///
    /// # Panics
    ///
    /// Panics if the shard segments are not disjoint — decoded
    /// checkpoints can't be (decode validates routing), and encoded ones
    /// come from a correct capture.
    pub fn epoch_net(&self) -> NetMultiset {
        NetMultiset::merge_disjoint(self.config.n, self.shards.iter().map(|s| &s.net))
    }
}

/// On-disk size of one net-segment entry: two `u32` endpoints, a `u32`
/// multiplicity, and the `f64` weight bits.
const NET_ENTRY_BYTES: usize = 20;

/// Serializes a checkpoint into its wire frame. Each shard's segment is
/// already canonically sorted ([`NetMultiset`] invariant) and the shard
/// sketches are canonical under hash-partitioned routing, so equal states
/// produce equal bytes.
fn encode(cp: &Checkpoint) -> Vec<u8> {
    let mut payload = Vec::new();
    wire::put_u64(&mut payload, cp.config.n as u64);
    wire::put_u64(&mut payload, cp.config.seed);
    wire::put_u64(&mut payload, cp.config.shards as u64);
    wire::put_u64(&mut payload, cp.config.batch_size as u64);
    wire::put_u64(&mut payload, cp.config.spanner_k as u64);
    wire::put_u64(&mut payload, cp.config.cut_eps.to_bits());
    wire::put_u64(&mut payload, cp.epoch);
    wire::put_u64(&mut payload, cp.total_updates);
    wire::put_u64(&mut payload, cp.wal_pos.segment);
    wire::put_u64(&mut payload, cp.wal_pos.offset);
    wire::put_len(&mut payload, cp.shards.len());
    for shard in &cp.shards {
        wire::put_len(&mut payload, shard.net.num_edges());
        for e in shard.net.entries() {
            wire::put_u32(&mut payload, e.edge.u());
            wire::put_u32(&mut payload, e.edge.v());
            wire::put_u32(&mut payload, e.multiplicity);
            wire::put_u64(&mut payload, e.weight.to_bits());
        }
        wire::put_block(&mut payload, &shard.sketch.snapshot());
    }
    wire::finish_frame(wire::KIND_CHECKPOINT_V3, payload)
}

/// Decodes and validates a checkpoint frame. Every structural violation —
/// a config that would panic the service constructors, a shard count that
/// disagrees with the config, a malformed or mis-sorted net entry, a
/// segment entry routed to a shard that does not own its edge — is a
/// [`WireError`], never a panic: checkpoint bytes are untrusted input.
/// The routing check doubles as the cross-shard consistency check:
/// entries owned by distinct shards are necessarily disjoint, so the
/// concatenation of validated segments is exactly one well-formed epoch
/// segment.
fn decode(bytes: &[u8]) -> Result<Checkpoint, WireError> {
    let mut r = wire::open_frame(wire::KIND_CHECKPOINT_V3, bytes)?;
    let n = r.u64()? as usize;
    let seed = r.u64()?;
    let shards = r.u64()? as usize;
    let batch_size = r.u64()? as usize;
    let spanner_k = r.u64()? as usize;
    let cut_eps = f64::from_bits(r.u64()?);
    // Validate before calling the panicking GraphConfig builders.
    if n < 2 {
        return Err(WireError::Malformed("checkpoint n below 2"));
    }
    if shards == 0 || batch_size == 0 || spanner_k == 0 {
        return Err(WireError::Malformed("zero shard/batch/spanner parameter"));
    }
    if !(cut_eps > 0.0 && cut_eps < 1.0) {
        return Err(WireError::Malformed("cut_eps outside (0, 1)"));
    }
    let config = GraphConfig::new(n)
        .seed(seed)
        .shards(shards)
        .batch_size(batch_size)
        .spanner_k(spanner_k)
        .cut_eps(cut_eps);
    let epoch = r.u64()?;
    let total_updates = r.u64()?;
    let wal_pos = WalPosition {
        segment: r.u64()?,
        offset: r.u64()?,
    };
    let shard_count = r.read_len()?;
    if shard_count != shards {
        return Err(WireError::Malformed("shard frames disagree with config"));
    }
    let mut shard_states: Vec<PersistedShard> = Vec::with_capacity(shard_count);
    let mut total_multiplicity = 0u64;
    for shard_idx in 0..shard_count {
        let net_len = r.read_len()?;
        let mut entries: Vec<NetEdge> = Vec::with_capacity(net_len.min(1 << 20));
        for _ in 0..net_len {
            let chunk = r.bytes(NET_ENTRY_BYTES)?;
            let u = u32::from_le_bytes(chunk[0..4].try_into().expect("4 bytes"));
            let v = u32::from_le_bytes(chunk[4..8].try_into().expect("4 bytes"));
            let multiplicity = u32::from_le_bytes(chunk[8..12].try_into().expect("4 bytes"));
            let weight = f64::from_bits(u64::from_le_bytes(
                chunk[12..20].try_into().expect("8 bytes"),
            ));
            if u >= v {
                return Err(WireError::Malformed("net entry endpoints not canonical"));
            }
            if v as usize >= n {
                return Err(WireError::Malformed("net entry endpoint out of range"));
            }
            if multiplicity == 0 {
                return Err(WireError::Malformed("net entry with zero multiplicity"));
            }
            if !weight.is_finite() {
                return Err(WireError::Malformed("net entry with non-finite weight"));
            }
            let edge = Edge::new(u, v);
            // The partition discipline: a segment may only hold edges its
            // shard owns. This also makes segments of distinct shards
            // disjoint, so the epoch-segment assembly cannot collide.
            if shard_for(edge.index(n), shards) != shard_idx {
                return Err(WireError::Malformed("net entry routed to the wrong shard"));
            }
            if let Some(prev) = entries.last() {
                if prev.edge >= edge {
                    return Err(WireError::Malformed("net entries out of canonical order"));
                }
            }
            total_multiplicity += multiplicity as u64;
            entries.push(NetEdge {
                edge,
                weight,
                multiplicity,
            });
        }
        let net = NetMultiset::from_entries(n, entries);
        // Nested frames re-run the full AGM validation (magic, version,
        // kind, checksum, structure).
        let sketch = AgmSketch::from_bytes(r.block()?)?;
        shard_states.push(PersistedShard { sketch, net });
    }
    // Each unit of net multiplicity needs at least one insertion, so the
    // segments combined can never outweigh the update counter.
    if total_multiplicity > total_updates {
        return Err(WireError::Malformed(
            "net multiplicity exceeds update counter",
        ));
    }
    r.expect_end()?;
    Ok(Checkpoint {
        config,
        epoch,
        total_updates,
        wal_pos,
        shards: shard_states,
    })
}

/// Writes `cp` to `dir/checkpoint.dsg` atomically: stage to a temp file,
/// fsync, rename over the old checkpoint, fsync the directory. Returns
/// the encoded frame size in bytes (what telemetry reports as the
/// checkpoint's on-disk footprint).
///
/// # Errors
///
/// [`StoreError::Io`] on any filesystem failure; the previous checkpoint
/// (if any) survives every failure mode.
pub fn write_checkpoint(dir: &Path, cp: &Checkpoint) -> Result<usize, StoreError> {
    let bytes = encode(cp);
    let tmp = dir.join(CHECKPOINT_TMP);
    std::fs::write(&tmp, &bytes)?;
    File::open(&tmp)?.sync_all()?;
    std::fs::rename(&tmp, dir.join(CHECKPOINT_FILE))?;
    // POSIX: the rename itself must be made durable via the directory.
    wal::fsync_dir(dir)?;
    Ok(bytes.len())
}

/// Reads and validates `dir/checkpoint.dsg`.
///
/// # Errors
///
/// [`StoreError::MissingCheckpoint`] if the file does not exist,
/// [`StoreError::Io`] on read failures,
/// [`StoreError::LegacyCheckpoint`] if the frame carries a retired kind —
/// the raw-log layout (9) or the global-segment canonical-factorization
/// layout (10) — rejected loudly, never misread under the v3 layout —
/// and [`StoreError::Frame`] if the frame fails validation (bad
/// magic/version/kind, checksum mismatch, or a structurally invalid
/// payload) — a damaged checkpoint is rejected whole, never half-loaded.
pub fn read_checkpoint(dir: &Path) -> Result<Checkpoint, StoreError> {
    let path = dir.join(CHECKPOINT_FILE);
    if !path.exists() {
        return Err(StoreError::MissingCheckpoint(path));
    }
    let bytes = std::fs::read(&path)?;
    // Header-only peek first: a retired-format frame deserves its own
    // loud error, not a generic kind mismatch.
    if let Ok(header) = wire::peek_kind(&bytes) {
        if header.kind == wire::KIND_CHECKPOINT || header.kind == wire::KIND_CHECKPOINT_V2 {
            return Err(StoreError::LegacyCheckpoint {
                path,
                kind: header.kind,
            });
        }
    }
    Ok(decode(&bytes)?)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code may unwrap freely

    use super::*;
    use crate::ScratchDir;
    use dsg_sketch::LinearSketch;

    /// A 3-shard checkpoint whose per-shard states obey the routing
    /// discipline: each path edge's update lands on (and is sealed into)
    /// the shard `shard_for` assigns it.
    fn sample_checkpoint() -> Checkpoint {
        let n = 12;
        let config = GraphConfig::new(n).seed(7).shards(3).batch_size(16);
        let mut sketches: Vec<AgmSketch> = (0..3).map(|_| AgmSketch::new(n, 7)).collect();
        let mut per_shard: Vec<Vec<dsg_graph::StreamUpdate>> = vec![Vec::new(); 3];
        for v in 0..9u32 {
            let up = dsg_graph::StreamUpdate::insert(v, v + 1);
            let shard = shard_for(up.edge.index(n), 3);
            sketches[shard].update(up.edge, up.delta as i128);
            per_shard[shard].push(up);
        }
        Checkpoint {
            config,
            epoch: 4,
            total_updates: 9,
            wal_pos: WalPosition {
                segment: 2,
                offset: 0,
            },
            shards: sketches
                .into_iter()
                .zip(&per_shard)
                .map(|(sketch, ups)| PersistedShard {
                    sketch,
                    net: NetMultiset::from_updates(n, ups),
                })
                .collect(),
        }
    }

    #[test]
    fn checkpoint_roundtrips() {
        let dir = ScratchDir::new("cp-roundtrip");
        let cp = sample_checkpoint();
        write_checkpoint(dir.path(), &cp).unwrap();
        let back = read_checkpoint(dir.path()).unwrap();
        assert_eq!(back.config, cp.config);
        assert_eq!(back.epoch, 4);
        assert_eq!(back.total_updates, 9);
        assert_eq!(back.wal_pos, cp.wal_pos);
        assert_eq!(back.epoch_net(), cp.epoch_net());
        for (a, b) in back.shards.iter().zip(&cp.shards) {
            assert_eq!(
                a.sketch.to_bytes(),
                b.sketch.to_bytes(),
                "shard frame diverged"
            );
            assert_eq!(a.net, b.net, "shard segment diverged");
        }
    }

    #[test]
    fn checkpoint_bytes_are_canonical() {
        // Two tenants whose streams differ wildly in order and churn but
        // share a net effect must checkpoint to byte-identical net
        // segments (the shard frames differ only if the sketches do —
        // and by linearity they don't).
        let g = dsg_graph::gen::erdos_renyi(12, 0.3, 5);
        let a = dsg_graph::GraphStream::with_churn(&g, 1.0, 6);
        let b = dsg_graph::GraphStream::with_churn(&g, 3.0, 7);
        let make = |stream: &dsg_graph::GraphStream, total: u64| {
            let mut sk = AgmSketch::new(12, 7);
            for up in stream.updates() {
                sk.update(up.edge, up.delta as i128);
            }
            encode(&Checkpoint {
                config: GraphConfig::new(12).seed(7).shards(1).batch_size(16),
                epoch: 1,
                total_updates: total,
                wal_pos: WalPosition::START,
                shards: vec![PersistedShard {
                    sketch: sk,
                    net: stream.net_multiset(),
                }],
            })
        };
        // Same update counter on both sides so the only variable is the
        // stream shape.
        let total = (a.len().max(b.len())) as u64;
        assert_eq!(
            make(&a, total),
            make(&b, total),
            "equal net states must produce equal checkpoint bytes"
        );
    }

    #[test]
    fn legacy_kind_is_a_typed_loud_error() {
        // Both retired layouts — the raw-log kind 9 and the
        // canonical-factorization kind 10 — must surface as the dedicated
        // error, never as a generic frame mismatch.
        for retired in [wire::KIND_CHECKPOINT, wire::KIND_CHECKPOINT_V2] {
            let dir = ScratchDir::new(&format!("cp-legacy-{retired}"));
            let cp = sample_checkpoint();
            write_checkpoint(dir.path(), &cp).unwrap();
            let path = dir.path().join(CHECKPOINT_FILE);
            // Rewrite the header's kind tag to the retired kind.
            let mut bytes = std::fs::read(&path).unwrap();
            bytes[6..8].copy_from_slice(&retired.to_le_bytes());
            std::fs::write(&path, &bytes).unwrap();
            match read_checkpoint(dir.path()) {
                Err(StoreError::LegacyCheckpoint { kind, .. }) => {
                    assert_eq!(kind, retired);
                }
                other => panic!("expected LegacyCheckpoint for kind {retired}, got {other:?}"),
            }
        }
    }

    /// A 1-shard checkpoint: with a single shard every edge routes to
    /// shard 0, so the byte offset of the first segment entry is fixed and
    /// the segment is guaranteed several entries deep — exactly what the
    /// byte-surgery tests need.
    fn single_shard_checkpoint() -> Checkpoint {
        let n = 12;
        let updates: Vec<dsg_graph::StreamUpdate> = (0..9u32)
            .map(|v| dsg_graph::StreamUpdate::insert(v, v + 1))
            .collect();
        let mut sketch = AgmSketch::new(n, 7);
        for up in &updates {
            sketch.update(up.edge, up.delta as i128);
        }
        Checkpoint {
            config: GraphConfig::new(n).seed(7).shards(1).batch_size(16),
            epoch: 4,
            total_updates: 9,
            wal_pos: WalPosition::START,
            shards: vec![PersistedShard {
                sketch,
                net: NetMultiset::from_updates(n, &updates),
            }],
        }
    }

    #[test]
    fn mis_sorted_or_invalid_net_entries_rejected() {
        let cp = single_shard_checkpoint();
        assert!(
            cp.shards[0].net.num_edges() >= 2,
            "need two entries to swap"
        );
        let good = encode(&cp);
        // Locate shard 0's first net entry (10 u64 header fields, the
        // shard count, then shard 0's entry count).
        let entry0 = wire::HEADER_BYTES + 10 * 8 + 8 + 8;
        // Swap entry 0 and entry 1: out of canonical order.
        let mut bad = good.clone();
        let (a, b) = (entry0, entry0 + NET_ENTRY_BYTES);
        for i in 0..NET_ENTRY_BYTES {
            bad.swap(a + i, b + i);
        }
        // Re-checksum so only the ordering violation is on trial.
        let sum = wire::checksum(&bad[wire::HEADER_BYTES..]);
        bad[16..24].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            decode(&bad),
            Err(WireError::Malformed("net entries out of canonical order"))
        ));
        // Zero multiplicity is structural, too.
        let mut bad = good;
        bad[entry0 + 8..entry0 + 12].copy_from_slice(&0u32.to_le_bytes());
        let sum = wire::checksum(&bad[wire::HEADER_BYTES..]);
        bad[16..24].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            decode(&bad),
            Err(WireError::Malformed("net entry with zero multiplicity"))
        ));
    }

    #[test]
    fn mis_routed_segments_rejected() {
        // A segment entry sitting in a shard other than the one
        // `shard_for` assigns it is a malformed checkpoint: restore would
        // re-seed a worker with edges it will never see updates for.
        // `encode` is deliberately trusting (it serializes what the
        // engine produced), so build the corruption in memory and let
        // `decode` catch it.
        let mut cp = sample_checkpoint();
        let donor = (0..cp.shards.len())
            .find(|&s| cp.shards[s].net.num_edges() > 0)
            .expect("some shard must hold edges");
        let target = (donor + 1) % cp.shards.len();
        let moved = cp.shards[donor].net.clone();
        cp.shards[donor].net = std::mem::replace(&mut cp.shards[target].net, moved);
        assert!(matches!(
            decode(&encode(&cp)),
            Err(WireError::Malformed("net entry routed to the wrong shard"))
        ));
    }

    #[test]
    fn rewrite_is_atomic_replacement() {
        let dir = ScratchDir::new("cp-rewrite");
        let mut cp = sample_checkpoint();
        write_checkpoint(dir.path(), &cp).unwrap();
        cp.epoch = 5;
        write_checkpoint(dir.path(), &cp).unwrap();
        assert_eq!(read_checkpoint(dir.path()).unwrap().epoch, 5);
        // No stray temp file stays behind.
        assert!(!dir.path().join(CHECKPOINT_TMP).exists());
    }

    #[test]
    fn missing_checkpoint_is_typed() {
        let dir = ScratchDir::new("cp-missing");
        assert!(matches!(
            read_checkpoint(dir.path()),
            Err(StoreError::MissingCheckpoint(_))
        ));
    }

    #[test]
    fn corrupt_or_truncated_checkpoints_are_rejected() {
        let dir = ScratchDir::new("cp-corrupt");
        write_checkpoint(dir.path(), &sample_checkpoint()).unwrap();
        let path = dir.path().join(CHECKPOINT_FILE);
        let good = std::fs::read(&path).unwrap();
        // Truncation at any of a few depths: Truncated, never a panic.
        for cut in [0, 3, wire::HEADER_BYTES - 1, good.len() / 2, good.len() - 1] {
            std::fs::write(&path, &good[..cut]).unwrap();
            assert!(
                matches!(
                    read_checkpoint(dir.path()),
                    Err(StoreError::Frame(WireError::Truncated))
                ),
                "cut at {cut} must read as truncation"
            );
        }
        // A flipped payload byte fails the checksum.
        let mut bad = good.clone();
        bad[wire::HEADER_BYTES + 5] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            read_checkpoint(dir.path()),
            Err(StoreError::Frame(WireError::BadChecksum))
        ));
        // Wrong magic is not a checkpoint at all.
        let mut bad = good;
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            read_checkpoint(dir.path()),
            Err(StoreError::Frame(WireError::BadMagic))
        ));
    }
}
