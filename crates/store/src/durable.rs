//! The durable mode of the service layer: [`DurableGraph`] and
//! [`DurableRegistry`].
//!
//! The layering is WAL-ahead, checkpoint-behind:
//!
//! * **`apply` / `advance_epoch`** first append a record to the tenant's
//!   [`Wal`] (durable per the [`SyncPolicy`](crate::SyncPolicy)), then
//!   apply the same operation to the in-memory [`ServedGraph`]. The WAL
//!   is therefore always *ahead of or equal to* memory, and replaying it
//!   can only re-create operations that were acknowledged (or were about
//!   to be).
//! * **`checkpoint`** captures the served graph's state atomically at an
//!   epoch boundary ([`ServedGraph::checkpoint_state`]), rotates the WAL
//!   so the capture point is a segment boundary, writes the checkpoint
//!   file with that position, and compacts away every older segment —
//!   bounding disk at one checkpoint plus the post-checkpoint tail.
//! * **`DurableRegistry::open`** recovers every tenant directory found
//!   under the root: restore the checkpoint into a live engine
//!   ([`GraphRegistry::restore`]), then replay the WAL tail through the
//!   normal `apply`/`advance_epoch` path. By linearity the recovered
//!   sketches are bit-identical to an uninterrupted run of the durable
//!   prefix — the property `crates/store/tests/crash_matrix.rs` exercises
//!   for every possible torn tail.
//!
//! All three durable operations on one graph serialize on the tenant's
//! WAL lock, so the WAL's record order is exactly the order operations
//! reached the engine; readers ([`DurableGraph::query`],
//! [`DurableGraph::snapshot`]) never take that lock.

use crate::checkpoint::{read_checkpoint, write_checkpoint, Checkpoint, CHECKPOINT_FILE};
use crate::wal::{ReplaySummary, Wal, WalConfig, WalMetrics, WalPosition, WalRecord};
use crate::{StoreError, SyncPolicy};
use dsg_agm::AgmSketch;
use dsg_graph::{StreamUpdate, Vertex};
use dsg_service::audit::{self, QualityVerdict};
use dsg_service::{
    EpochSnapshot, GraphConfig, GraphRegistry, PersistedGraph, PersistedShard, Query, Response,
    ServedGraph, ServiceError,
};
use dsg_telemetry::{series, trace, Counter, EventKind, FlightRecorder, Histogram, MetricRegistry};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs of a durable registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreOptions {
    /// WAL shape: sync cadence and segment rollover size.
    pub wal: WalConfig,
}

impl StoreOptions {
    /// Sets the WAL sync policy (default: [`SyncPolicy::EveryBatch`]).
    pub fn sync(mut self, policy: SyncPolicy) -> Self {
        self.wal.sync = policy;
        self
    }

    /// Sets the WAL segment rollover size in bytes.
    pub fn segment_bytes(mut self, bytes: u64) -> Self {
        self.wal.segment_bytes = bytes;
        self
    }
}

/// What one [`DurableGraph::checkpoint`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointStats {
    /// The epoch the checkpoint captured (capture advances an epoch).
    pub epoch: u64,
    /// Updates covered by the checkpoint.
    pub total_updates: u64,
    /// The WAL position the checkpoint covers; replay resumes here.
    pub wal_pos: WalPosition,
    /// WAL segment files compacted away (they predate `wal_pos`).
    pub segments_removed: usize,
}

/// How one tenant came back during [`DurableRegistry::open`], phase
/// timings included (the same durations land in the registry's
/// `dsg_store_recovery_phase_nanos{phase=…}` series).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantRecovery {
    /// The tenant's name.
    pub name: String,
    /// Epoch restored from the checkpoint file.
    pub checkpoint_epoch: u64,
    /// Complete WAL records replayed after the checkpoint.
    pub records_replayed: usize,
    /// Whether a torn (partially written) final record was truncated.
    pub torn_tail: bool,
    /// Reading, checksum-validating, and decoding the checkpoint file.
    pub checkpoint_load: Duration,
    /// Restoring the checkpoint into a live engine (workers spawned
    /// pre-loaded, compacted logs re-seeded).
    pub restore: Duration,
    /// Replaying the post-checkpoint WAL tail through normal ingest.
    pub replay: Duration,
    /// Scanning the last segment for a torn tail and positioning the
    /// append handle.
    pub wal_open: Duration,
    /// Verdict of the post-recovery self-audit: one forced audit pass
    /// (the full query battery, each answer verified against an exact
    /// recompute) over the recovered epoch. A recovery that comes back
    /// with `quality.violations > 0` restored a state that serves wrong
    /// answers — corrupt artifacts, not just lost updates.
    pub quality: QualityVerdict,
}

/// Per-tenant telemetry handles of the durability layer, resolved once
/// at create/recover time. `Default` is all-no-op.
#[derive(Debug, Clone, Default)]
struct StoreMetrics {
    wal: WalMetrics,
    checkpoint_write_nanos: Histogram,
    checkpoint_written_bytes: Counter,
    checkpoint_read_nanos: Histogram,
    checkpoint_read_bytes: Counter,
    recovery_restore_nanos: Histogram,
    recovery_replay_nanos: Histogram,
    recovery_wal_open_nanos: Histogram,
    tracer: FlightRecorder,
    tenant: u32,
}

impl StoreMetrics {
    fn for_tenant(
        reg: &MetricRegistry,
        tracer: &FlightRecorder,
        graph: &str,
        policy: SyncPolicy,
    ) -> Self {
        let tenant = tracer.intern(graph);
        let g = |name: &str| series(name, &[("graph", graph)]);
        let phase = |p: &str| {
            reg.histogram(&series(
                "dsg_store_recovery_phase_nanos",
                &[("graph", graph), ("phase", p)],
            ))
        };
        Self {
            wal: WalMetrics {
                append_nanos: reg.histogram(&g("dsg_store_wal_append_nanos")),
                fsync_nanos: reg.histogram(&series(
                    "dsg_store_wal_fsync_nanos",
                    &[("graph", graph), ("policy", policy.label())],
                )),
                appended_bytes: reg.counter(&g("dsg_store_wal_appended_bytes_total")),
                segments_rotated: reg.counter(&g("dsg_store_wal_segments_rotated_total")),
                segments_compacted: reg.counter(&g("dsg_store_wal_segments_compacted_total")),
            },
            checkpoint_write_nanos: reg.histogram(&g("dsg_store_checkpoint_write_nanos")),
            checkpoint_written_bytes: reg.counter(&g("dsg_store_checkpoint_written_bytes_total")),
            checkpoint_read_nanos: reg.histogram(&g("dsg_store_checkpoint_read_nanos")),
            checkpoint_read_bytes: reg.counter(&g("dsg_store_checkpoint_read_bytes_total")),
            recovery_restore_nanos: phase("restore"),
            recovery_replay_nanos: phase("replay"),
            recovery_wal_open_nanos: phase("wal_open"),
            tracer: tracer.clone(),
            tenant,
        }
    }

    /// Records one flight-recorder event under the ambient trace id.
    #[inline]
    fn trace(&self, kind: EventKind, payload: u64) {
        self.tracer
            .record(kind, trace::current_trace_id(), self.tenant, payload);
    }
}

/// A [`ServedGraph`] whose mutations persist: updates and epoch advances
/// are written to a write-ahead log before they touch memory, and
/// [`checkpoint`](DurableGraph::checkpoint) bounds the log. Obtained from
/// [`DurableRegistry::create`] / [`DurableRegistry::get`].
#[derive(Debug)]
pub struct DurableGraph {
    dir: PathBuf,
    graph: Arc<ServedGraph>,
    wal: Mutex<Wal>,
    /// Set by [`DurableRegistry::remove`] under the WAL lock: once true,
    /// durable mutations through surviving handles fail instead of
    /// acknowledging writes into unlinked files.
    closed: AtomicBool,
    metrics: StoreMetrics,
}

impl DurableGraph {
    /// The tenant's name.
    pub fn name(&self) -> &str {
        self.graph.name()
    }

    /// Fails durable mutations on a removed tenant. Must be called with
    /// the WAL lock held: [`DurableRegistry::remove`] sets the flag under
    /// that lock, so a successful check here cannot race the removal.
    fn ensure_open(&self) -> Result<(), StoreError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(StoreError::TenantRemoved(self.name().to_string()));
        }
        Ok(())
    }

    /// The graph's configuration.
    pub fn config(&self) -> &GraphConfig {
        self.graph.config()
    }

    /// The tenant's directory (checkpoint file plus WAL segments).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The underlying served graph — for wiring a
    /// [`QueryService`](dsg_service::QueryService) pool or reading epoch
    /// snapshots directly. Mutations through this handle bypass the WAL
    /// and will not survive a crash; use the durable methods instead.
    pub fn served(&self) -> &Arc<ServedGraph> {
        &self.graph
    }

    /// The current epoch snapshot (lock-free with respect to the WAL).
    pub fn snapshot(&self) -> Arc<EpochSnapshot> {
        self.graph.snapshot()
    }

    /// Executes a query against the current epoch.
    ///
    /// # Errors
    ///
    /// [`StoreError::Service`] wrapping the query's own failure.
    pub fn query(&self, query: &Query) -> Result<Response, StoreError> {
        Ok(self.graph.query(query)?)
    }

    /// Durably appends a batch of stream updates: WAL record first
    /// (durable per the sync policy), then the in-memory engine. Returns
    /// the total updates ingested so far.
    ///
    /// # Errors
    ///
    /// [`StoreError::Service`] if any update names a vertex outside
    /// `[0, n)`, drives a pair's net multiplicity below zero, or carries
    /// a delta outside ±1; [`StoreError::InvalidUpdate`] if an update
    /// would be refused by the WAL decoder at recovery time (delta not
    /// ±1, non-finite weight, degenerate edge) — all rejected before
    /// anything is written, so the log never holds a record replay
    /// cannot accept and the WAL and engine never diverge.
    /// [`StoreError::Io`] if the append fails,
    /// [`StoreError::TenantRemoved`] after a durable remove.
    pub fn apply(&self, updates: &[StreamUpdate]) -> Result<u64, StoreError> {
        for up in updates {
            // The log's own acceptance predicate: anything replay would
            // call corruption is refused here, while the operation can
            // still be refused.
            if !crate::wal::is_replayable(up) {
                return Err(StoreError::InvalidUpdate(
                    "delta must be ±1, weight finite, edge endpoints distinct",
                ));
            }
        }
        let mut wal = self.wal.lock().expect("wal lock poisoned");
        self.ensure_open()?;
        // Validation (vertex range + net-multiplicity non-negativity),
        // the WAL append, and the in-memory apply all run under ONE
        // ingest-lock hold inside apply_logged, so the state checked is
        // exactly the state the batch lands on — the log never
        // acknowledges a record memory would refuse, even against
        // writers bypassing durability through `served()`.
        self.graph.apply_logged(updates, || {
            wal.append_batch(updates)?;
            self.metrics
                .trace(EventKind::WalAppend, updates.len() as u64);
            Ok(())
        })
    }

    /// Durably applies one edge insertion.
    ///
    /// # Errors
    ///
    /// As [`apply`](DurableGraph::apply).
    pub fn insert(&self, u: Vertex, v: Vertex) -> Result<u64, StoreError> {
        self.apply(&[StreamUpdate::insert(u, v)])
    }

    /// Durably applies one edge deletion.
    ///
    /// # Errors
    ///
    /// As [`apply`](DurableGraph::apply).
    pub fn delete(&self, u: Vertex, v: Vertex) -> Result<u64, StoreError> {
        self.apply(&[StreamUpdate::delete(u, v)])
    }

    /// Durably advances an epoch: an epoch-advance marker is logged, then
    /// the epoch is published. Replay re-advances at exactly this point,
    /// so recovered epoch counters match the uninterrupted run.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the marker cannot be logged (the epoch is
    /// then *not* advanced — durability failures never let memory run
    /// ahead of an acknowledged log), [`StoreError::TenantRemoved`]
    /// after a durable remove.
    pub fn advance_epoch(&self) -> Result<Arc<EpochSnapshot>, StoreError> {
        let mut wal = self.wal.lock().expect("wal lock poisoned");
        self.ensure_open()?;
        let next = self.graph.snapshot().epoch() + 1;
        wal.append_epoch_marker(next)?;
        let snap = self.graph.advance_epoch();
        debug_assert_eq!(snap.epoch(), next, "epoch advanced outside the WAL lock");
        Ok(snap)
    }

    /// Captures a checkpoint and compacts the log: fork every shard at an
    /// epoch boundary, rotate the WAL so the capture point is a segment
    /// boundary, write the checkpoint file atomically, then delete every
    /// segment the checkpoint covers. After this, recovery costs
    /// *checkpoint restore + post-checkpoint tail replay* instead of a
    /// full-log replay (experiment E20 measures the gap).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures,
    /// [`StoreError::TenantRemoved`] after a durable remove. A failure
    /// partway through is safe at every step: the capture's own epoch
    /// advance is logged as a marker *before* the capture (so the old
    /// checkpoint + full WAL replay to matching epoch numbers even if
    /// the new checkpoint never lands), the checkpoint file is staged
    /// and atomically renamed, and compaction runs only after the
    /// rename.
    pub fn checkpoint(&self) -> Result<CheckpointStats, StoreError> {
        let mut wal = self.wal.lock().expect("wal lock poisoned");
        self.ensure_open()?;
        // Checkpoints reuse an ambient trace id (a traced caller sees its
        // own id on the store events) or mint a fresh one.
        let trace_id = match trace::current_trace_id() {
            0 => self.metrics.tracer.next_trace_id(),
            ambient => ambient,
        };
        let _scope = trace::scoped(trace_id);
        // The capture inside checkpoint_state advances an epoch; log it
        // like any other advance so a replay that never sees the new
        // checkpoint file still reproduces the same epoch sequence.
        let next = self.graph.snapshot().epoch() + 1;
        wal.append_epoch_marker(next)?;
        let state = self.graph.checkpoint_state();
        debug_assert_eq!(state.epoch, next, "epoch advanced outside the WAL lock");
        let wal_pos = wal.rotate()?;
        let cp = Checkpoint {
            config: *self.graph.config(),
            epoch: state.epoch,
            total_updates: state.total_updates,
            wal_pos,
            shards: state.shards,
        };
        let bytes = self
            .metrics
            .checkpoint_write_nanos
            .time(|| write_checkpoint(&self.dir, &cp))?;
        self.metrics.checkpoint_written_bytes.add(bytes as u64);
        self.metrics.trace(EventKind::CheckpointWrite, bytes as u64);
        let segments_removed = wal.compact_before(wal_pos)?;
        Ok(CheckpointStats {
            epoch: cp.epoch,
            total_updates: cp.total_updates,
            wal_pos,
            segments_removed,
        })
    }

    /// Flushes and fsyncs buffered WAL appends — the manual durability
    /// point under [`SyncPolicy::Manual`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the flush or sync fails,
    /// [`StoreError::TenantRemoved`] after a durable remove.
    pub fn sync(&self) -> Result<(), StoreError> {
        let mut wal = self.wal.lock().expect("wal lock poisoned");
        self.ensure_open()?;
        wal.sync()
    }

    /// The WAL position right after the last appended record.
    pub fn wal_position(&self) -> WalPosition {
        self.wal.lock().expect("wal lock poisoned").position()
    }
}

/// A [`GraphRegistry`] whose tenants live on disk: `create`, `apply`,
/// `advance_epoch`, and `remove` persist, and [`open`](DurableRegistry::open)
/// recovers every tenant found under the root directory.
///
/// Layout: `root/<name>/` holds one tenant — its [`CHECKPOINT_FILE`] plus
/// WAL segments. Tenant names are restricted to `[A-Za-z0-9_.-]` (no
/// leading dot) so they map to directory names verbatim.
#[derive(Debug)]
pub struct DurableRegistry {
    root: PathBuf,
    options: StoreOptions,
    shared: Arc<GraphRegistry>,
    tenants: Mutex<HashMap<String, Arc<DurableGraph>>>,
    recovery: Vec<TenantRecovery>,
}

/// Checks a tenant name is usable as a directory name.
fn validate_name(name: &str) -> Result<(), StoreError> {
    let ok = !name.is_empty()
        && !name.starts_with('.')
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.'));
    if ok {
        Ok(())
    } else {
        Err(StoreError::InvalidName(name.to_string()))
    }
}

impl DurableRegistry {
    /// Opens (or initializes) a durable registry rooted at `root`,
    /// recovering every tenant directory found there: checkpoint restore,
    /// then WAL-tail replay through the live engine. A tenant directory
    /// without a checkpoint file is an aborted `create` (the checkpoint
    /// write is what makes a create durable) and is cleaned away.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures, [`StoreError::Frame`]
    /// if a checkpoint fails validation, [`StoreError::CorruptLog`] if a
    /// WAL holds a fully-present-but-invalid record. Recovery is
    /// all-or-nothing: a damaged tenant fails the whole open rather than
    /// silently serving a subset.
    pub fn open(root: &Path, options: StoreOptions) -> Result<Self, StoreError> {
        Self::open_with_telemetry(root, options, Arc::new(MetricRegistry::new()))
    }

    /// Like [`open`](DurableRegistry::open), but recording into the given
    /// metric registry — share one registry across stores, or pass
    /// [`MetricRegistry::noop`] to disable instrumentation entirely.
    ///
    /// # Errors
    ///
    /// As [`open`](DurableRegistry::open).
    pub fn open_with_telemetry(
        root: &Path,
        options: StoreOptions,
        telemetry: Arc<MetricRegistry>,
    ) -> Result<Self, StoreError> {
        Self::open_with_observability(root, options, telemetry, FlightRecorder::noop())
    }

    /// Like [`open_with_telemetry`](DurableRegistry::open_with_telemetry),
    /// but also wiring a [`FlightRecorder`]: recovery, WAL appends, and
    /// checkpoints emit causal trace events alongside the engine's and
    /// service layer's, so one `/tracez` dump shows a query's full path
    /// through the durable stack.
    ///
    /// # Errors
    ///
    /// As [`open`](DurableRegistry::open).
    pub fn open_with_observability(
        root: &Path,
        options: StoreOptions,
        telemetry: Arc<MetricRegistry>,
        tracer: FlightRecorder,
    ) -> Result<Self, StoreError> {
        std::fs::create_dir_all(root)?;
        let shared = Arc::new(GraphRegistry::with_observability(telemetry, tracer));
        let mut names = Vec::new();
        for entry in std::fs::read_dir(root)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let Some(name) = entry.file_name().to_str().map(String::from) else {
                continue;
            };
            if entry.path().join(CHECKPOINT_FILE).exists() {
                names.push(name);
                continue;
            }
            let segments = crate::wal::list_segments(&entry.path())?;
            let mut wal_bytes = 0u64;
            for (_, path) in &segments {
                wal_bytes += std::fs::metadata(path)?.len();
            }
            if wal_bytes > 0 {
                // WAL records with no checkpoint cannot be an aborted
                // create (a create appends nothing before its initial
                // checkpoint lands) — this is a tenant whose checkpoint
                // file was lost. Deleting it would destroy acknowledged
                // records; refuse loudly instead.
                return Err(StoreError::MissingCheckpoint(
                    entry.path().join(CHECKPOINT_FILE),
                ));
            }
            if validate_name(&name).is_ok() && !segments.is_empty() {
                // Aborted create (valid tenant name, an empty WAL was
                // started, but the checkpoint that makes a create durable
                // never landed): clean it away. Anything else — an
                // unrelated directory the operator keeps under the root —
                // is left strictly alone.
                std::fs::remove_dir_all(entry.path())?;
            }
        }
        names.sort_unstable();
        let mut tenants = HashMap::with_capacity(names.len());
        let mut recovery = Vec::with_capacity(names.len());
        for name in names {
            let dir = root.join(&name);
            let (graph, report) = Self::recover_tenant(&shared, &name, dir, options)?;
            tenants.insert(name, graph);
            recovery.push(report);
        }
        Ok(Self {
            root: root.to_path_buf(),
            options,
            shared,
            tenants: Mutex::new(tenants),
            recovery,
        })
    }

    /// Restores one tenant from its checkpoint and replays its WAL tail.
    fn recover_tenant(
        shared: &Arc<GraphRegistry>,
        name: &str,
        dir: PathBuf,
        options: StoreOptions,
    ) -> Result<(Arc<DurableGraph>, TenantRecovery), StoreError> {
        let metrics =
            StoreMetrics::for_tenant(shared.telemetry(), shared.tracer(), name, options.wal.sync);
        // One trace id spans the whole recovery: every phase event below,
        // plus the engine/service events emitted by the replay itself,
        // share it — a recovery reads as one causal chain in `/tracez`.
        let recovery_trace = metrics.tracer.next_trace_id();
        let _scope = trace::scoped(recovery_trace);
        let started = Instant::now();
        let cp = read_checkpoint(&dir)?;
        let checkpoint_load = started.elapsed();
        metrics
            .checkpoint_read_nanos
            .record_duration(checkpoint_load);
        metrics.trace(EventKind::CheckpointLoad, checkpoint_load.as_nanos() as u64);
        if let Ok(meta) = std::fs::metadata(dir.join(CHECKPOINT_FILE)) {
            metrics.checkpoint_read_bytes.add(meta.len());
        }
        let config = cp.config;
        let started = Instant::now();
        let graph = shared.restore(
            name,
            config,
            PersistedGraph {
                epoch: cp.epoch,
                total_updates: cp.total_updates,
                shards: cp.shards,
            },
        )?;
        let restore = started.elapsed();
        metrics.recovery_restore_nanos.record_duration(restore);
        metrics.trace(EventKind::RecoveryRestore, restore.as_nanos() as u64);
        // Replay first (read-only: a torn tail is dropped logically and
        // reported), then open for append (which truncates the torn tail
        // physically so new records never land after garbage).
        let started = Instant::now();
        let summary = Self::replay_into(&graph, &dir, cp.wal_pos)?;
        let replay = started.elapsed();
        metrics.recovery_replay_nanos.record_duration(replay);
        metrics.trace(EventKind::RecoveryReplay, replay.as_nanos() as u64);
        let started = Instant::now();
        let mut wal = Wal::open(&dir, options.wal)?;
        wal.set_metrics(metrics.wal.clone());
        let wal_open = started.elapsed();
        metrics.recovery_wal_open_nanos.record_duration(wal_open);
        metrics.trace(EventKind::RecoveryWalOpen, wal_open.as_nanos() as u64);
        let durable = Arc::new(DurableGraph {
            dir,
            graph,
            wal: Mutex::new(wal),
            closed: AtomicBool::new(false),
            metrics,
        });
        // Post-recovery self-audit: before this tenant serves anything,
        // force one audit pass over the recovered epoch so the recovery
        // report carries a quality verdict, not just phase timings.
        let quality = audit::self_audit(&durable.graph.snapshot());
        if !quality.clean() {
            durable
                .metrics
                .trace(EventKind::QualityViolation, quality.violations);
        }
        let report = TenantRecovery {
            name: name.to_string(),
            checkpoint_epoch: cp.epoch,
            records_replayed: summary.records,
            torn_tail: summary.torn_tail,
            checkpoint_load,
            restore,
            replay,
            wal_open,
            quality,
        };
        Ok((durable, report))
    }

    /// Replays the WAL tail from `from` through the restored graph's
    /// normal ingest path.
    fn replay_into(
        graph: &Arc<ServedGraph>,
        dir: &Path,
        from: WalPosition,
    ) -> Result<ReplaySummary, StoreError> {
        Wal::replay(dir, from, |record, pos| match record {
            WalRecord::Batch(updates) => {
                graph.apply(&updates)?;
                Ok(())
            }
            WalRecord::EpochAdvance(epoch) => {
                let snap = graph.advance_epoch();
                if snap.epoch() == epoch {
                    Ok(())
                } else {
                    // The marker's epoch is an integrity cross-check: a
                    // mismatch means the log and checkpoint disagree.
                    Err(StoreError::CorruptLog {
                        segment: pos.segment,
                        offset: pos.offset,
                        reason: "epoch marker out of sequence with checkpoint",
                    })
                }
            }
        })
    }

    /// How each tenant came back during [`open`](DurableRegistry::open)
    /// (empty for a fresh root), sorted by tenant name.
    pub fn recovery_report(&self) -> &[TenantRecovery] {
        &self.recovery
    }

    /// The options this registry was opened with.
    pub fn options(&self) -> StoreOptions {
        self.options
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The shared in-memory registry behind the durable tenants — the
    /// handle a [`QueryService`](dsg_service::QueryService) worker pool
    /// takes. Creating graphs directly on this registry bypasses
    /// durability.
    pub fn shared(&self) -> &Arc<GraphRegistry> {
        &self.shared
    }

    /// Creates a new durable tenant: directory, empty WAL, and an initial
    /// epoch-0 checkpoint (the write that makes the create durable).
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidName`] for names unusable as directories,
    /// [`StoreError::TenantExists`] if durable state already exists,
    /// [`StoreError::Service`] if the name is live in the shared
    /// registry, [`StoreError::Io`] on filesystem failures.
    pub fn create(&self, name: &str, config: GraphConfig) -> Result<Arc<DurableGraph>, StoreError> {
        validate_name(name)?;
        let mut tenants = self.tenants.lock().expect("tenant map poisoned");
        let dir = self.root.join(name);
        if tenants.contains_key(name) || dir.join(CHECKPOINT_FILE).exists() {
            return Err(StoreError::TenantExists(name.to_string()));
        }
        let graph = self.shared.create(name, config)?;
        let metrics = StoreMetrics::for_tenant(
            self.shared.telemetry(),
            self.shared.tracer(),
            name,
            self.options.wal.sync,
        );
        let staged = (|| -> Result<Wal, StoreError> {
            std::fs::create_dir_all(&dir)?;
            let mut wal = Wal::open(&dir, self.options.wal)?;
            wal.set_metrics(metrics.wal.clone());
            let cp = Checkpoint {
                config,
                epoch: 0,
                total_updates: 0,
                wal_pos: wal.position(),
                shards: (0..config.shards)
                    .map(|_| PersistedShard {
                        sketch: AgmSketch::new(config.n, config.seed),
                        net: dsg_graph::NetMultiset::empty(config.n),
                    })
                    .collect(),
            };
            let bytes = metrics
                .checkpoint_write_nanos
                .time(|| write_checkpoint(&dir, &cp))?;
            metrics.checkpoint_written_bytes.add(bytes as u64);
            metrics.trace(EventKind::CheckpointWrite, bytes as u64);
            Ok(wal)
        })();
        let wal = match staged {
            Ok(wal) => wal,
            Err(e) => {
                // Roll back so a retry can succeed: neither a live
                // in-memory graph nor a half-made directory may survive
                // a failed create.
                let _ = self.shared.remove(name);
                let _ = std::fs::remove_dir_all(&dir);
                return Err(e);
            }
        };
        let durable = Arc::new(DurableGraph {
            dir,
            graph,
            wal: Mutex::new(wal),
            closed: AtomicBool::new(false),
            metrics,
        });
        tenants.insert(name.to_string(), Arc::clone(&durable));
        Ok(durable)
    }

    /// Looks up a durable tenant by name.
    ///
    /// # Errors
    ///
    /// [`StoreError::Service`] wrapping
    /// [`ServiceError::UnknownGraph`] if nothing is registered.
    pub fn get(&self, name: &str) -> Result<Arc<DurableGraph>, StoreError> {
        self.tenants
            .lock()
            .expect("tenant map poisoned")
            .get(name)
            .cloned()
            .ok_or_else(|| StoreError::Service(ServiceError::UnknownGraph(name.to_string())))
    }

    /// Removes a tenant durably: close its WAL gate, unregister it, shut
    /// its engine down (shard workers and the WAL handle are dropped —
    /// workers are *joined*, not detached, so no thread still touches the
    /// files), and delete its directory. Irreversible. Surviving
    /// [`DurableGraph`] handles keep answering *reads* from memory, but
    /// every durable mutation through them fails with
    /// [`StoreError::TenantRemoved`] — otherwise an `apply` racing the
    /// removal could acknowledge a write into an unlinked file.
    ///
    /// # Errors
    ///
    /// [`StoreError::Service`] wrapping
    /// [`ServiceError::UnknownGraph`] if nothing is registered,
    /// [`StoreError::Io`] if the directory cannot be deleted.
    pub fn remove(&self, name: &str) -> Result<(), StoreError> {
        let durable = {
            let mut tenants = self.tenants.lock().expect("tenant map poisoned");
            tenants
                .remove(name)
                .ok_or_else(|| StoreError::Service(ServiceError::UnknownGraph(name.to_string())))?
        };
        {
            // Taking the WAL lock drains any in-flight durable op;
            // setting the flag under it means every later op observes it
            // before touching the WAL (ensure_open runs under this lock).
            let _wal = durable.wal.lock().expect("wal lock poisoned");
            durable.closed.store(true, Ordering::Release);
        }
        self.shared.remove(name)?;
        let dir = durable.dir.clone();
        // If this was the last handle, dropping it joins the engine's
        // shard workers and flushes + closes the WAL before the files go.
        drop(durable);
        std::fs::remove_dir_all(&dir)?;
        Ok(())
    }

    /// Registered tenant names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .tenants
            .lock()
            .expect("tenant map poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.tenants.lock().expect("tenant map poisoned").len()
    }

    /// Whether the registry has no tenants.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code may unwrap freely

    use super::*;
    use crate::ScratchDir;
    use dsg_sketch::LinearSketch;

    fn path_updates(range: std::ops::Range<u32>) -> Vec<StreamUpdate> {
        range.map(|v| StreamUpdate::insert(v, v + 1)).collect()
    }

    #[test]
    fn create_apply_crash_recover_roundtrip() {
        let dir = ScratchDir::new("durable-roundtrip");
        let config = GraphConfig::new(10).seed(3).shards(2).batch_size(4);
        let reg = DurableRegistry::open(dir.path(), StoreOptions::default()).unwrap();
        assert!(reg.is_empty());
        let g = reg.create("t", config).unwrap();
        g.apply(&path_updates(0..6)).unwrap();
        let snap = g.advance_epoch().unwrap();
        assert_eq!(snap.epoch(), 1);
        g.apply(&path_updates(6..9)).unwrap();
        let reference = {
            g.advance_epoch().unwrap();
            LinearSketch::to_bytes(g.snapshot().sketch())
        };
        drop((g, reg)); // crash

        let reg = DurableRegistry::open(dir.path(), StoreOptions::default()).unwrap();
        assert_eq!(reg.names(), vec!["t".to_string()]);
        let report = &reg.recovery_report()[0];
        assert_eq!(report.checkpoint_epoch, 0);
        assert!(report.records_replayed >= 4); // 2 batches + 2 markers
        assert!(
            report.quality.samples >= 5 && report.quality.clean(),
            "recovered epoch must pass the self-audit: {:?}",
            report.quality
        );
        let g = reg.get("t").unwrap();
        assert_eq!(g.snapshot().epoch(), 2);
        assert_eq!(
            LinearSketch::to_bytes(g.snapshot().sketch()),
            reference,
            "recovered sketch diverged"
        );
        match g.query(&Query::SameComponent(0, 9)).unwrap() {
            Response::SameComponent(connected) => assert!(connected),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn checkpoint_compacts_and_recovery_uses_the_tail() {
        let dir = ScratchDir::new("durable-compact");
        let config = GraphConfig::new(12).seed(5).shards(2).batch_size(4);
        let reg = DurableRegistry::open(dir.path(), StoreOptions::default()).unwrap();
        let g = reg.create("t", config).unwrap();
        g.apply(&path_updates(0..5)).unwrap();
        let stats = g.checkpoint().unwrap();
        assert_eq!(stats.epoch, 1);
        assert_eq!(stats.total_updates, 5);
        assert_eq!(stats.segments_removed, 1, "pre-checkpoint segment stays?");
        g.apply(&path_updates(5..8)).unwrap();
        let reference = {
            g.advance_epoch().unwrap();
            LinearSketch::to_bytes(g.snapshot().sketch())
        };
        drop((g, reg)); // crash

        let reg = DurableRegistry::open(dir.path(), StoreOptions::default()).unwrap();
        let report = &reg.recovery_report()[0];
        assert_eq!(report.checkpoint_epoch, 1);
        assert_eq!(report.records_replayed, 2, "tail is one batch + marker");
        let g = reg.get("t").unwrap();
        assert_eq!(LinearSketch::to_bytes(g.snapshot().sketch()), reference);
        // A second checkpoint keeps compacting.
        let stats = g.checkpoint().unwrap();
        assert!(stats.segments_removed >= 1);
    }

    #[test]
    fn remove_deletes_durable_state() {
        let dir = ScratchDir::new("durable-remove");
        let reg = DurableRegistry::open(dir.path(), StoreOptions::default()).unwrap();
        let g = reg.create("gone", GraphConfig::new(6)).unwrap();
        g.insert(0, 1).unwrap();
        let tenant_dir = g.dir().to_path_buf();
        drop(g);
        reg.remove("gone").unwrap();
        assert!(!tenant_dir.exists(), "tenant dir must be deleted");
        assert!(reg.is_empty());
        assert!(matches!(
            reg.remove("gone"),
            Err(StoreError::Service(ServiceError::UnknownGraph(_)))
        ));
        drop(reg);
        // Reopen: the removed tenant must not resurrect.
        let reg = DurableRegistry::open(dir.path(), StoreOptions::default()).unwrap();
        assert!(reg.is_empty());
    }

    #[test]
    fn duplicate_and_invalid_names_are_rejected() {
        let dir = ScratchDir::new("durable-names");
        let reg = DurableRegistry::open(dir.path(), StoreOptions::default()).unwrap();
        reg.create("ok-name_1", GraphConfig::new(4)).unwrap();
        assert!(matches!(
            reg.create("ok-name_1", GraphConfig::new(4)),
            Err(StoreError::TenantExists(_))
        ));
        for bad in ["", ".hidden", "a/b", "a b", "ü"] {
            assert!(
                matches!(
                    reg.create(bad, GraphConfig::new(4)),
                    Err(StoreError::InvalidName(_))
                ),
                "name {bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn manual_sync_still_recovers_after_clean_close() {
        let dir = ScratchDir::new("durable-manual");
        let options = StoreOptions::default().sync(SyncPolicy::Manual);
        let reg = DurableRegistry::open(dir.path(), options).unwrap();
        let g = reg.create("m", GraphConfig::new(8).shards(2)).unwrap();
        g.apply(&path_updates(0..7)).unwrap();
        g.sync().unwrap(); // the caller-owned durability point
        drop((g, reg));
        let reg = DurableRegistry::open(dir.path(), options).unwrap();
        let g = reg.get("m").unwrap();
        g.advance_epoch().unwrap();
        assert_eq!(g.snapshot().total_updates(), 7);
    }

    #[test]
    fn failed_checkpoint_write_still_recovers_from_old_checkpoint_and_log() {
        let dir = ScratchDir::new("durable-cpfail");
        let config = GraphConfig::new(10).seed(4).shards(2).batch_size(4);
        let reg = DurableRegistry::open(dir.path(), StoreOptions::default()).unwrap();
        let g = reg.create("t", config).unwrap();
        g.apply(&path_updates(0..5)).unwrap();
        g.advance_epoch().unwrap(); // epoch 1
                                    // Sabotage the checkpoint staging path: a directory squatting on
                                    // the temp-file name makes write_checkpoint fail mid-sequence,
                                    // AFTER the capture advanced the epoch and rotated the WAL.
        std::fs::create_dir(g.dir().join("checkpoint.tmp")).unwrap();
        assert!(matches!(g.checkpoint(), Err(StoreError::Io(_))));
        std::fs::remove_dir(g.dir().join("checkpoint.tmp")).unwrap();
        // The tenant keeps working: the failed capture's epoch advance
        // (1 -> 2) was logged as a marker, so the epoch sequence in the
        // WAL stays replayable against the ORIGINAL epoch-0 checkpoint.
        g.apply(&path_updates(5..8)).unwrap();
        let snap = g.advance_epoch().unwrap();
        assert_eq!(snap.epoch(), 3);
        let reference = LinearSketch::to_bytes(snap.sketch());
        drop((g, reg)); // crash

        let reg = DurableRegistry::open(dir.path(), StoreOptions::default())
            .expect("old checkpoint + full WAL must recover after a failed checkpoint");
        assert_eq!(reg.recovery_report()[0].checkpoint_epoch, 0);
        let g = reg.get("t").unwrap();
        assert_eq!(g.snapshot().epoch(), 3);
        assert_eq!(LinearSketch::to_bytes(g.snapshot().sketch()), reference);
    }

    #[test]
    fn open_cleans_aborted_creates_but_leaves_foreign_directories_alone() {
        let dir = ScratchDir::new("durable-foreign");
        // An unrelated directory an operator keeps under the root.
        std::fs::create_dir_all(dir.path().join("backups")).unwrap();
        std::fs::write(dir.path().join("backups/precious.txt"), b"keep me").unwrap();
        // An aborted create: valid tenant name, WAL started, but the
        // durable-making checkpoint never landed.
        let aborted = dir.path().join("half");
        std::fs::create_dir_all(&aborted).unwrap();
        std::fs::write(aborted.join("wal-00000000.seg"), b"").unwrap();
        let reg = DurableRegistry::open(dir.path(), StoreOptions::default()).unwrap();
        assert!(reg.is_empty());
        assert!(
            dir.path().join("backups/precious.txt").exists(),
            "open() must not delete unrelated directories"
        );
        assert!(!aborted.exists(), "aborted create must be cleaned away");
    }

    #[test]
    fn lost_checkpoint_with_surviving_wal_refuses_to_open() {
        let dir = ScratchDir::new("durable-lostcp");
        let reg = DurableRegistry::open(dir.path(), StoreOptions::default()).unwrap();
        let g = reg.create("t", GraphConfig::new(8)).unwrap();
        g.apply(&path_updates(0..5)).unwrap();
        let tenant_dir = g.dir().to_path_buf();
        drop((g, reg));
        // The checkpoint file is lost but acknowledged WAL records
        // survive: this must NOT be treated as an aborted create and
        // deleted — it is a loud missing-checkpoint error.
        std::fs::remove_file(tenant_dir.join(crate::CHECKPOINT_FILE)).unwrap();
        assert!(matches!(
            DurableRegistry::open(dir.path(), StoreOptions::default()),
            Err(StoreError::MissingCheckpoint(_))
        ));
        assert!(
            !crate::wal::list_segments(&tenant_dir).unwrap().is_empty(),
            "the WAL records must survive the refused open"
        );
    }

    #[test]
    fn failed_create_rolls_back_and_retry_succeeds() {
        let dir = ScratchDir::new("durable-createfail");
        let reg = DurableRegistry::open(dir.path(), StoreOptions::default()).unwrap();
        // Sabotage the initial checkpoint write of the upcoming create.
        let tenant_dir = dir.path().join("t");
        std::fs::create_dir_all(tenant_dir.join("checkpoint.tmp")).unwrap();
        assert!(matches!(
            reg.create("t", GraphConfig::new(6)),
            Err(StoreError::Io(_))
        ));
        // Rolled back everywhere: not in the durable map, not in the
        // shared registry, no directory — so a retry just works.
        assert!(reg.is_empty());
        assert!(reg.shared().is_empty());
        assert!(!tenant_dir.exists());
        let g = reg.create("t", GraphConfig::new(6)).unwrap();
        g.insert(0, 1).unwrap();
    }

    #[test]
    fn surviving_handles_cannot_write_after_remove() {
        let dir = ScratchDir::new("durable-closed");
        let reg = DurableRegistry::open(dir.path(), StoreOptions::default()).unwrap();
        let g = reg.create("t", GraphConfig::new(8)).unwrap();
        g.insert(0, 1).unwrap();
        g.advance_epoch().unwrap();
        let survivor = reg.get("t").unwrap();
        reg.remove("t").unwrap();
        // Durable mutations through the surviving handle must fail loudly
        // instead of acknowledging writes into unlinked files.
        assert!(matches!(
            survivor.insert(1, 2),
            Err(StoreError::TenantRemoved(_))
        ));
        assert!(matches!(
            survivor.advance_epoch(),
            Err(StoreError::TenantRemoved(_))
        ));
        assert!(matches!(
            survivor.checkpoint(),
            Err(StoreError::TenantRemoved(_))
        ));
        assert!(matches!(survivor.sync(), Err(StoreError::TenantRemoved(_))));
        // Reads still serve from memory.
        match survivor.query(&Query::SameComponent(0, 1)).unwrap() {
            Response::SameComponent(connected) => assert!(connected),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn updates_that_cannot_replay_are_rejected_up_front() {
        let dir = ScratchDir::new("durable-badupdate");
        let reg = DurableRegistry::open(dir.path(), StoreOptions::default()).unwrap();
        let g = reg.create("t", GraphConfig::new(8)).unwrap();
        let before = g.wal_position();
        let mut zero_delta = StreamUpdate::insert(0, 1);
        zero_delta.delta = 0;
        let mut nan_weight = StreamUpdate::insert(0, 1);
        nan_weight.weight = f64::NAN;
        for bad in [zero_delta, nan_weight] {
            assert!(matches!(
                g.apply(&[StreamUpdate::insert(2, 3), bad]),
                Err(StoreError::InvalidUpdate(_))
            ));
        }
        assert_eq!(g.wal_position(), before, "rejected batch reached the WAL");
        g.advance_epoch().unwrap();
        assert_eq!(g.snapshot().total_updates(), 0);
    }

    #[test]
    fn telemetry_traces_wal_checkpoint_and_recovery() {
        let dir = ScratchDir::new("durable-telemetry");
        let config = GraphConfig::new(10).seed(7).shards(2).batch_size(4);
        let telemetry = Arc::new(MetricRegistry::new());
        let reg = DurableRegistry::open_with_telemetry(
            dir.path(),
            StoreOptions::default(),
            Arc::clone(&telemetry),
        )
        .unwrap();
        let g = reg.create("t", config).unwrap();
        g.apply(&path_updates(0..6)).unwrap();
        g.checkpoint().unwrap();
        g.apply(&path_updates(6..9)).unwrap();
        g.advance_epoch().unwrap();

        let snap = telemetry.snapshot();
        assert!(
            snap.counter("dsg_store_wal_appended_bytes_total{graph=\"t\"}")
                .unwrap_or(0)
                > 0,
            "appended bytes uncounted"
        );
        assert!(
            snap.counter("dsg_store_wal_segments_rotated_total{graph=\"t\"}")
                .unwrap_or(0)
                >= 1,
            "checkpoint rotation uncounted"
        );
        assert!(
            snap.counter("dsg_store_wal_segments_compacted_total{graph=\"t\"}")
                .unwrap_or(0)
                >= 1,
            "checkpoint compaction uncounted"
        );
        let appends = snap
            .histogram("dsg_store_wal_append_nanos{graph=\"t\"}")
            .expect("append histogram missing");
        assert!(appends.count() >= 4, "2 batches + 2 markers appended");
        let fsyncs = snap
            .histogram("dsg_store_wal_fsync_nanos{graph=\"t\",policy=\"every_batch\"}")
            .expect("fsync histogram missing (policy label wrong?)");
        assert!(fsyncs.count() >= 4, "EveryBatch syncs each append");
        let cp_writes = snap
            .histogram("dsg_store_checkpoint_write_nanos{graph=\"t\"}")
            .expect("checkpoint-write histogram missing");
        assert_eq!(cp_writes.count(), 2, "initial create + explicit checkpoint");
        assert!(
            snap.counter("dsg_store_checkpoint_written_bytes_total{graph=\"t\"}")
                .unwrap_or(0)
                > 0
        );
        drop((g, reg)); // crash

        let reg = DurableRegistry::open_with_telemetry(
            dir.path(),
            StoreOptions::default(),
            Arc::clone(&telemetry),
        )
        .unwrap();
        let report = &reg.recovery_report()[0];
        assert!(
            report.checkpoint_load + report.restore + report.replay + report.wal_open
                > Duration::ZERO,
            "recovery phase durations must be populated"
        );
        let snap = telemetry.snapshot();
        assert!(
            snap.counter("dsg_store_checkpoint_read_bytes_total{graph=\"t\"}")
                .unwrap_or(0)
                > 0
        );
        for phase in ["restore", "replay", "wal_open"] {
            let h = snap
                .histogram(&format!(
                    "dsg_store_recovery_phase_nanos{{graph=\"t\",phase=\"{phase}\"}}"
                ))
                .unwrap_or_else(|| panic!("recovery phase {phase} missing"));
            assert_eq!(h.count(), 1, "one recovery per open for phase {phase}");
        }
        // Every store series lands in the Prometheus rendering too.
        let text = telemetry.render_prometheus();
        assert!(text.contains("dsg_store_wal_append_nanos"));
        assert!(text.contains("dsg_store_recovery_phase_nanos"));
    }

    #[test]
    fn flight_recorder_captures_wal_checkpoint_and_recovery_events() {
        let dir = ScratchDir::new("durable-tracing");
        let config = GraphConfig::new(10).seed(2).shards(2).batch_size(4);
        let open = |cap| {
            DurableRegistry::open_with_observability(
                dir.path(),
                StoreOptions::default(),
                Arc::new(MetricRegistry::new()),
                FlightRecorder::with_capacity(cap),
            )
        };
        let reg = open(256).unwrap();
        let g = reg.create("t", config).unwrap();
        g.apply(&path_updates(0..6)).unwrap();
        g.checkpoint().unwrap();
        let events = reg.shared().tracer().dump();
        let kind_count = |k: EventKind| events.iter().filter(|e| e.kind == k).count();
        assert!(kind_count(EventKind::WalAppend) >= 1, "apply untraced");
        // Two checkpoints wrote (create's initial + the explicit one).
        assert_eq!(kind_count(EventKind::CheckpointWrite), 2);
        // The explicit checkpoint mints its own trace id (the create's
        // initial checkpoint runs untraced — ambient id 0).
        let cp = events
            .iter()
            .rfind(|e| e.kind == EventKind::CheckpointWrite)
            .unwrap();
        assert_ne!(cp.trace_id, 0, "checkpoint must mint a trace id");
        assert_eq!(
            reg.shared().tracer().tenant_name(cp.tenant).as_deref(),
            Some("t")
        );
        // Leave a post-checkpoint tail so recovery has records to replay.
        g.apply(&path_updates(6..9)).unwrap();
        drop((g, reg)); // crash

        let reg = open(256).unwrap();
        let events = reg.shared().tracer().dump();
        let recovered: Vec<_> = events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    EventKind::CheckpointLoad
                        | EventKind::RecoveryRestore
                        | EventKind::RecoveryReplay
                        | EventKind::RecoveryWalOpen
                )
            })
            .collect();
        assert_eq!(
            recovered.len(),
            4,
            "all four recovery phases must be traced"
        );
        let id = recovered[0].trace_id;
        assert_ne!(id, 0);
        assert!(
            recovered.iter().all(|e| e.trace_id == id),
            "recovery phases must share one causal trace id"
        );
        // The replay's own ingest events join the recovery's chain.
        assert!(
            events
                .iter()
                .any(|e| e.kind == EventKind::IngestBatch && e.trace_id == id),
            "replayed batches must carry the recovery trace id"
        );
    }

    #[test]
    fn out_of_range_batch_never_touches_the_wal() {
        let dir = ScratchDir::new("durable-range");
        let reg = DurableRegistry::open(dir.path(), StoreOptions::default()).unwrap();
        let g = reg.create("r", GraphConfig::new(5)).unwrap();
        let before = g.wal_position();
        assert!(matches!(
            g.apply(&[StreamUpdate::insert(0, 1), StreamUpdate::insert(2, 9)]),
            Err(StoreError::Service(ServiceError::VertexOutOfRange { .. }))
        ));
        assert_eq!(g.wal_position(), before, "rejected batch reached the WAL");
    }
}
