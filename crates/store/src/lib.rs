//! # dsg-store — durability by linearity
//!
//! The engine (`dsg-engine`) sharded the write path and the service
//! (`dsg-service`) built the read path, but both are memory-only: kill the
//! process and every tenant's graph is gone. This crate is the durability
//! subsystem, and it leans on the same property as everything else in the
//! workspace — **linearity**. Because the entire stream state is a small
//! linear summary (Goel–Kapralov–Post's single-pass sparsification and the
//! KLMMS spectral line make the same observation), a checkpoint is just
//! the existing versioned wire frames of every shard's sketch, and
//! recovery is *restore checkpoint + replay WAL tail* — provably
//! bit-identical to an uninterrupted run, because a linear sketch does not
//! care how its stream was partitioned across process lifetimes.
//!
//! Three layers:
//!
//! * [`wal`] — a segmented **write-ahead log** of `StreamUpdate` batches:
//!   length-prefixed, FNV-1a-checksummed records (the framing discipline
//!   of `dsg_sketch::wire`), buffered writes, a configurable
//!   [`SyncPolicy`], and torn-tail handling that truncates a partial
//!   final record instead of erroring.
//! * [`checkpoint`] — atomically-renamed checkpoint files (wire kind 11,
//!   format v3) holding, **per ingest shard**, the canonical sketch
//!   frame plus that shard's compacted net-edge segment, alongside the
//!   graph config, epoch counter, and WAL position — O(live graph)
//!   bytes, not O(stream); once a checkpoint lands, older WAL segments
//!   are compacted away. Recovery re-seeds each hash-partitioned worker
//!   from its own segment, so replay routes and cancels exactly as the
//!   original run did. The retired kind-9 (raw-log) and kind-10
//!   (global-segment) formats are rejected with a typed
//!   [`StoreError::LegacyCheckpoint`].
//! * [`durable`] — [`DurableGraph`] / [`DurableRegistry`], the persistent
//!   mode of the service layer: `create` / `apply` / `advance_epoch` /
//!   `remove` persist, and reopening the registry recovers every tenant
//!   to answers bit-identical to the durable prefix.
//!
//! ```
//! use dsg_service::{GraphConfig, Query, Response};
//! use dsg_store::{DurableRegistry, ScratchDir, StoreOptions};
//!
//! let dir = ScratchDir::new("doc-durable");
//! let registry = DurableRegistry::open(dir.path(), StoreOptions::default()).unwrap();
//! let g = registry.create("social", GraphConfig::new(6)).unwrap();
//! g.insert(0, 1).unwrap();
//! g.insert(1, 2).unwrap();
//! g.advance_epoch().unwrap();
//! drop((g, registry)); // "crash"
//!
//! let registry = DurableRegistry::open(dir.path(), StoreOptions::default()).unwrap();
//! let g = registry.get("social").unwrap(); // recovered from WAL
//! match g.query(&Query::SameComponent(0, 2)).unwrap() {
//!     Response::SameComponent(connected) => assert!(connected),
//!     other => panic!("unexpected response {other:?}"),
//! }
//! ```

// Durability code must not `unwrap()` on I/O paths: every filesystem
// failure is a recoverable `StoreError`, never a panic. (CI enforces this
// with a clippy gate scoped to this crate; `expect` on poisoned locks is
// deliberate — a poisoned lock *is* a programming error.)
#![deny(clippy::unwrap_used)]

pub mod checkpoint;
pub mod durable;
pub mod wal;

pub use checkpoint::{read_checkpoint, write_checkpoint, Checkpoint, CHECKPOINT_FILE};
pub use durable::{CheckpointStats, DurableGraph, DurableRegistry, StoreOptions, TenantRecovery};
pub use wal::{SyncPolicy, Wal, WalConfig, WalMetrics, WalPosition, WalRecord};

use dsg_service::ServiceError;
use dsg_sketch::WireError;
use std::path::PathBuf;

/// Why a durability operation failed. I/O paths never panic: every
/// filesystem or validation failure surfaces here.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// A checkpoint frame failed wire validation (bad magic, version,
    /// checksum, or a structurally invalid payload) — the checkpoint is
    /// rejected, never half-loaded.
    Frame(WireError),
    /// A WAL record that is fully present on disk failed validation —
    /// corruption in the log body, as opposed to a torn tail (which is
    /// silently truncated).
    CorruptLog {
        /// Segment sequence number of the bad record.
        segment: u64,
        /// Byte offset of the bad record within its segment.
        offset: u64,
        /// What was wrong with it.
        reason: &'static str,
    },
    /// The service layer rejected an operation (unknown graph, duplicate
    /// name, out-of-range vertex, …).
    Service(ServiceError),
    /// The checkpoint file is a retired format this build no longer
    /// reads: wire kind 9 (the raw-log layout whose payload nested the
    /// full O(stream) update log) or wire kind 10 (the global-segment
    /// layout that stored one epoch-wide net segment and re-factored
    /// per-shard states on restore). Rejected loudly — re-checkpoint
    /// from a build that still reads them — never misread under the v3
    /// layout or silently skipped.
    LegacyCheckpoint {
        /// The offending checkpoint file.
        path: PathBuf,
        /// The legacy kind tag found in the frame header.
        kind: u16,
    },
    /// A tenant directory already holds a checkpoint — refusing to
    /// overwrite an existing graph's durable state.
    TenantExists(String),
    /// No checkpoint file found where one was required.
    MissingCheckpoint(PathBuf),
    /// A graph name unusable as a directory name (durable tenants map to
    /// subdirectories; names are restricted to `[A-Za-z0-9_.-]`, no
    /// leading dot).
    InvalidName(String),
    /// A batch contained an update the WAL decoder would refuse at
    /// recovery time (delta not ±1, non-finite weight, degenerate edge):
    /// rejected before anything is written, so the log never holds a
    /// record its own replay calls corruption.
    InvalidUpdate(&'static str),
    /// The tenant was durably removed; surviving handles can still read
    /// from memory but can no longer write.
    TenantRemoved(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Frame(e) => write!(f, "bad checkpoint frame: {e}"),
            StoreError::CorruptLog {
                segment,
                offset,
                reason,
            } => write!(
                f,
                "corrupt WAL record in segment {segment} at offset {offset}: {reason}"
            ),
            StoreError::Service(e) => write!(f, "service rejected durable operation: {e}"),
            StoreError::LegacyCheckpoint { path, kind } => {
                write!(
                    f,
                    "checkpoint {} uses retired wire kind {kind}; \
                     this build reads only the v3 per-shard-segment format",
                    path.display()
                )
            }
            StoreError::TenantExists(name) => {
                write!(f, "tenant '{name}' already has durable state")
            }
            StoreError::MissingCheckpoint(path) => {
                write!(f, "missing checkpoint file {}", path.display())
            }
            StoreError::InvalidName(name) => {
                write!(f, "graph name '{name}' is not usable as a directory name")
            }
            StoreError::InvalidUpdate(reason) => {
                write!(f, "update would not survive WAL replay: {reason}")
            }
            StoreError::TenantRemoved(name) => {
                write!(
                    f,
                    "tenant '{name}' was durably removed; handle is read-only"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Frame(e) => Some(e),
            StoreError::Service(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<WireError> for StoreError {
    fn from(e: WireError) -> Self {
        StoreError::Frame(e)
    }
}

impl From<ServiceError> for StoreError {
    fn from(e: ServiceError) -> Self {
        StoreError::Service(e)
    }
}

/// A unique scratch directory under the system temp dir, removed on drop.
///
/// Tests, benches, and examples across the workspace need short-lived
/// store directories and the build has no `tempfile` dependency; this is
/// the minimal shared stand-in. Uniqueness comes from the process id plus
/// a global counter, so parallel tests never collide.
#[derive(Debug)]
pub struct ScratchDir {
    path: PathBuf,
}

impl ScratchDir {
    /// Creates a fresh empty directory tagged with `label`.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created — scratch space is a
    /// precondition of the tests that use this, not a recoverable state.
    pub fn new(label: &str) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let id = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("dsg-store-{label}-{}-{id}", std::process::id()));
        // A stale dir from a crashed earlier run with the same pid+id is
        // possible in principle; start clean either way.
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("failed to create scratch dir");
        Self { path }
    }

    /// The directory path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
