//! The crash matrix: the headline guarantee of the durability subsystem,
//! tested exhaustively.
//!
//! A crash can cut the write-ahead log at *any* byte — between records,
//! inside a record header, inside a payload. For **every** such
//! truncation offset of a tenant's final WAL segment, recovery must
//! (a) not panic and not over-read, and (b) produce a graph whose query
//! answers are bit-identical to an uninterrupted single-threaded run over
//! exactly the durable prefix — the complete records before the cut (plus
//! whatever an earlier checkpoint already covers).
//!
//! Alongside the matrix: checkpoint-corruption rejection properties
//! mirroring `crates/sketch/tests/wire_props.rs` (any bit flip or
//! truncation of the v3 checkpoint file — every per-shard compacted
//! segment and sketch frame included — is a typed [`StoreError::Frame`],
//! never a panic or a silent half-load), cross-shard consistency (the
//! shard segments a checkpoint persists are disjoint, correctly routed,
//! and concatenate to exactly the net multiset of the durable prefix), a
//! retired-format guard (a kind-9 raw-log or kind-10 global-segment
//! frame is the loud, typed [`StoreError::LegacyCheckpoint`], not a
//! panic or a silent skip), and WAL mid-log corruption (a fully present
//! record with a bad body is [`StoreError::CorruptLog`], never silently
//! skipped).

use dsg_graph::{gen, GraphStream, StreamUpdate};
use dsg_service::{GraphConfig, GraphRegistry, Query, Response};
use dsg_sketch::LinearSketch;
use dsg_store::wal::list_segments;
use dsg_store::{DurableRegistry, ScratchDir, StoreError, StoreOptions};
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::Path;

const N: usize = 16;

fn config() -> GraphConfig {
    GraphConfig::new(N).seed(11).shards(2).batch_size(4)
}

/// A deterministic insert/delete stream over `N` vertices.
fn stream(seed: u64) -> Vec<StreamUpdate> {
    let g = gen::erdos_renyi(N, 0.3, seed);
    GraphStream::with_churn(&g, 1.0, seed ^ 0xD15C)
        .updates()
        .to_vec()
}

/// Copies every regular file of `src` into `dst` (tenant dirs are flat).
fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        if entry.file_type().unwrap().is_file() {
            std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
        }
    }
}

/// Everything we compare between a recovered graph and its reference run:
/// canonical sketch bytes, the (deterministically extracted) forest, the
/// ingest counter, and a spread of live query answers.
#[derive(Debug, PartialEq, Clone)]
struct Fingerprint {
    sketch: Vec<u8>,
    forest: Vec<dsg_graph::Edge>,
    total_updates: u64,
    answers: Vec<Response>,
}

fn fingerprint(snap: &dsg_service::EpochSnapshot) -> Fingerprint {
    let queries = [
        Query::Connectivity,
        Query::SameComponent(0, 5),
        Query::SameComponent(2, 11),
        Query::Distance(0, 9),
        Query::Distance(3, 14),
        Query::IsFar {
            u: 1,
            v: 12,
            threshold: 2,
        },
    ];
    Fingerprint {
        sketch: LinearSketch::to_bytes(snap.sketch()),
        forest: snap.forest().result.edges.clone(),
        total_updates: snap.total_updates(),
        answers: queries.iter().map(|q| snap.execute(q).unwrap()).collect(),
    }
}

/// The uninterrupted single-threaded run: one in-memory graph, one shard,
/// fed `updates` in one go.
fn reference(updates: &[StreamUpdate]) -> Fingerprint {
    let reg = GraphRegistry::new();
    let g = reg.create("ref", config().shards(1)).unwrap();
    g.apply(updates).unwrap();
    fingerprint(&g.advance_epoch())
}

/// Exhaustive matrix: one durable tenant with a mid-stream checkpoint,
/// then every byte-truncation of the final WAL segment.
#[test]
fn truncation_at_every_byte_recovers_exact_durable_prefix() {
    let updates = stream(3);
    let batches: Vec<&[StreamUpdate]> = updates.chunks(3).collect();
    assert!(
        batches.len() >= 8,
        "need a real tail, got {}",
        batches.len()
    );
    let pre = batches.len() / 2;

    // Write phase: pre-checkpoint batches (with one epoch advance),
    // checkpoint, then a tail of batches with another epoch advance —
    // tracking, for each complete tail record, the WAL offset where it
    // ends and how many stream updates are durable at that point.
    let src = ScratchDir::new("crash-matrix-src");
    let reg = DurableRegistry::open(src.path(), StoreOptions::default()).unwrap();
    let g = reg.create("t", config()).unwrap();
    let mut durable_count = 0usize;
    for (i, batch) in batches[..pre].iter().enumerate() {
        g.apply(batch).unwrap();
        durable_count += batch.len();
        if i == 1 {
            g.advance_epoch().unwrap();
        }
    }
    let stats = g.checkpoint().unwrap();
    assert_eq!(
        stats.wal_pos.offset, 0,
        "checkpoint sits at a segment start"
    );
    // (record end offset in the final segment, durable update count there)
    // The tail is kept short — 4 batches plus a marker — because the
    // matrix below re-runs recovery once per BYTE of it.
    let mut marks: Vec<(u64, usize)> = vec![(0, durable_count)];
    for (i, batch) in batches[pre..pre + 4].iter().enumerate() {
        g.apply(batch).unwrap();
        durable_count += batch.len();
        marks.push((g.wal_position().offset, durable_count));
        if i == 1 {
            g.advance_epoch().unwrap();
            // An epoch marker freezes no new updates.
            marks.push((g.wal_position().offset, durable_count));
        }
    }
    let tenant_dir = g.dir().to_path_buf();
    drop((g, reg)); // clean close; the matrix below re-tears it

    let (_, last_segment) = list_segments(&tenant_dir).unwrap().pop().unwrap();
    let full_len = std::fs::metadata(&last_segment).unwrap().len();
    assert_eq!(
        full_len,
        marks.last().unwrap().0,
        "marks must cover the segment"
    );

    // Reference fingerprints per durable update count, memoized — several
    // truncation offsets share a durable prefix.
    let mut references: HashMap<usize, Fingerprint> = HashMap::new();

    for cut in 0..=full_len {
        let scratch = ScratchDir::new("crash-matrix-cut");
        let dst = scratch.path().join("t");
        copy_dir(&tenant_dir, &dst);
        let seg = list_segments(&dst).unwrap().pop().unwrap().1;
        std::fs::OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(cut)
            .unwrap();

        let reg = DurableRegistry::open(scratch.path(), StoreOptions::default())
            .unwrap_or_else(|e| panic!("recovery must tolerate a cut at byte {cut}: {e}"));
        let report = &reg.recovery_report()[0];
        let at_boundary = marks.iter().any(|&(off, _)| off == cut);
        assert_eq!(
            report.torn_tail, !at_boundary,
            "torn-tail report wrong for cut at byte {cut}"
        );
        let durable = marks
            .iter()
            .filter(|&&(off, _)| off <= cut)
            .map(|&(_, count)| count)
            .max()
            .expect("mark 0 always qualifies");
        let g = reg.get("t").unwrap();
        let recovered = fingerprint(&g.advance_epoch().unwrap());
        let expected = references
            .entry(durable)
            .or_insert_with(|| reference(&updates[..durable]));
        assert_eq!(
            &recovered, expected,
            "cut at byte {cut} (durable prefix {durable} updates) diverged"
        );
    }
}

proptest! {
    /// Arbitrary streams, checkpoint positions, and cut points (record
    /// boundary plus a mid-record byte overhang): recovery always equals
    /// the uninterrupted single-threaded run of the durable prefix.
    #[test]
    fn arbitrary_prefix_recovery_is_bit_identical(
        seed in 0u64..12,
        checkpoint_after in 0usize..7,
        cut_record in 0usize..10,
        overhang in 0u64..24,
    ) {
        // 6 is the "no checkpoint at all" arm.
        let checkpoint_after = (checkpoint_after < 6).then_some(checkpoint_after);
        let updates = stream(seed);
        let batches: Vec<&[StreamUpdate]> = updates.chunks(4).collect();

        let src = ScratchDir::new("crash-prop-src");
        let reg = DurableRegistry::open(src.path(), StoreOptions::default()).unwrap();
        let g = reg.create("t", config()).unwrap();
        let mut marks: Vec<(u64, usize)> = vec![(0, 0)];
        let mut durable_count = 0usize;
        for (i, batch) in batches.iter().enumerate() {
            g.apply(batch).unwrap();
            durable_count += batch.len();
            marks.push((g.wal_position().offset, durable_count));
            if i % 3 == 2 {
                g.advance_epoch().unwrap();
                marks.push((g.wal_position().offset, durable_count));
            }
            if Some(i) == checkpoint_after {
                g.checkpoint().unwrap();
                // Checkpoint rotates to a fresh segment: restart marks.
                marks = vec![(0, durable_count)];
            }
        }
        let tenant_dir = g.dir().to_path_buf();
        drop((g, reg));

        // Pick a cut: a tracked record boundary plus a few bytes into the
        // next record (clamped to the segment).
        let (_, last_segment) = list_segments(&tenant_dir).unwrap().pop().unwrap();
        let full_len = std::fs::metadata(&last_segment).unwrap().len();
        let base = marks[cut_record.min(marks.len() - 1)].0;
        let cut = (base + overhang).min(full_len);

        let scratch = ScratchDir::new("crash-prop-cut");
        let dst = scratch.path().join("t");
        copy_dir(&tenant_dir, &dst);
        let seg = list_segments(&dst).unwrap().pop().unwrap().1;
        std::fs::OpenOptions::new().write(true).open(&seg).unwrap().set_len(cut).unwrap();

        let reg = DurableRegistry::open(scratch.path(), StoreOptions::default()).unwrap();
        let durable = marks
            .iter()
            .filter(|&&(off, _)| off <= cut)
            .map(|&(_, count)| count)
            .max()
            .expect("mark 0 always qualifies");
        let g = reg.get("t").unwrap();
        let recovered = fingerprint(&g.advance_epoch().unwrap());
        prop_assert_eq!(recovered, reference(&updates[..durable]));
    }

    /// Any single bit flip anywhere in a v3 checkpoint file — the header,
    /// any shard's compacted net-edge segment, any nested sketch frame —
    /// is rejected as a typed frame error, mirroring the corruption
    /// properties the sketch wire format is tested under. The churn
    /// prefix guarantees every shard's compacted segment is nonempty, so
    /// the flips have per-shard segment bytes to land in.
    #[test]
    fn checkpoint_bit_flips_are_rejected(byte_seed in 0usize..1000, bit in 0u8..8) {
        let scratch = ScratchDir::new("cp-flip");
        let reg = DurableRegistry::open(scratch.path(), StoreOptions::default()).unwrap();
        let g = reg.create("t", config()).unwrap();
        g.apply(&stream(5)[..20]).unwrap();
        g.checkpoint().unwrap();
        let dir = g.dir().to_path_buf();
        drop((g, reg));

        let cp = dsg_store::read_checkpoint(&dir).unwrap();
        for (i, shard) in cp.shards.iter().enumerate() {
            prop_assert!(
                shard.net.num_edges() > 0,
                "shard {i} segment empty — flips would miss per-shard bytes"
            );
        }

        let path = dir.join(dsg_store::CHECKPOINT_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let at = byte_seed % bytes.len();
        bytes[at] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();

        match DurableRegistry::open(scratch.path(), StoreOptions::default()) {
            Err(StoreError::Frame(_)) => {}
            Err(other) => prop_assert!(false, "wrong error class for flipped byte {at}: {other}"),
            Ok(_) => prop_assert!(false, "corrupt checkpoint accepted (byte {at}, bit {bit})"),
        }
    }

    /// Truncating the checkpoint file at any length is rejected as a
    /// frame error (empty files included), never a panic or over-read.
    #[test]
    fn checkpoint_truncations_are_rejected(frac in 0.0f64..1.0) {
        let scratch = ScratchDir::new("cp-trunc");
        let reg = DurableRegistry::open(scratch.path(), StoreOptions::default()).unwrap();
        let g = reg.create("t", config()).unwrap();
        g.apply(&stream(6)[..20]).unwrap();
        g.checkpoint().unwrap();
        let dir = g.dir().to_path_buf();
        drop((g, reg));

        let path = dir.join(dsg_store::CHECKPOINT_FILE);
        let bytes = std::fs::read(&path).unwrap();
        let cut = ((bytes.len() as f64) * frac) as usize; // strictly shorter
        std::fs::write(&path, &bytes[..cut]).unwrap();
        prop_assert!(matches!(
            DurableRegistry::open(scratch.path(), StoreOptions::default()),
            Err(StoreError::Frame(_))
        ));
    }
}

/// Cross-shard consistency of the persisted layout: the per-shard
/// segments a checkpoint writes must (a) each hold only edges
/// `shard_for` routes to that shard — so recovery re-seeds every worker
/// with exactly the edges whose future updates it will see — and
/// (b) concatenate to exactly the net multiset of the durable prefix,
/// with no edge dropped, duplicated, or carrying residual churn.
#[test]
fn checkpoint_shard_segments_are_routed_and_sum_to_the_prefix() {
    let scratch = ScratchDir::new("cp-cross-shard");
    let shards = 3;
    let reg = DurableRegistry::open(scratch.path(), StoreOptions::default()).unwrap();
    let g = reg.create("t", config().shards(shards)).unwrap();
    let updates = stream(8);
    g.apply(&updates).unwrap();
    g.checkpoint().unwrap();
    let dir = g.dir().to_path_buf();
    drop((g, reg));

    let cp = dsg_store::read_checkpoint(&dir).unwrap();
    assert_eq!(cp.shards.len(), shards);
    for (i, shard) in cp.shards.iter().enumerate() {
        assert!(shard.net.num_edges() > 0, "shard {i} segment empty");
        for entry in shard.net.entries() {
            assert_eq!(
                dsg_engine::shard_for(entry.edge.index(N), shards),
                i,
                "{} persisted in shard {i}'s segment but routes elsewhere",
                entry.edge
            );
        }
    }
    // Σ shard segments = the durable prefix's net multiset, exactly.
    assert_eq!(
        cp.epoch_net(),
        dsg_graph::NetMultiset::from_updates(N, &updates),
        "concatenated shard segments diverge from the durable prefix"
    );
}

/// A checkpoint in either retired format — wire kind 9 (raw log) or
/// kind 10 (global-segment canonical factorization) — must fail recovery
/// with the loud, typed [`StoreError::LegacyCheckpoint`] — not a panic,
/// not a generic frame error, and certainly not a silent skip that would
/// "clean up" a tenant whose data is merely old.
#[test]
fn legacy_kind_checkpoint_fails_loudly() {
    for retired in [9u16, 10u16] {
        let scratch = ScratchDir::new(&format!("cp-legacy-kind-{retired}"));
        let reg = DurableRegistry::open(scratch.path(), StoreOptions::default()).unwrap();
        let g = reg.create("t", config()).unwrap();
        g.apply(&stream(9)[..20]).unwrap();
        g.checkpoint().unwrap();
        let dir = g.dir().to_path_buf();
        drop((g, reg));

        // Rewrite the frame header's kind tag to the retired kind (the
        // payload checksum does not cover the header, so the frame is
        // otherwise pristine — exactly what a real legacy file would
        // look like to the header peek).
        let path = dir.join(dsg_store::CHECKPOINT_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[6..8].copy_from_slice(&retired.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();

        match DurableRegistry::open(scratch.path(), StoreOptions::default()) {
            Err(StoreError::LegacyCheckpoint { kind, path }) => {
                assert_eq!(kind, retired);
                assert!(path.ends_with(dsg_store::CHECKPOINT_FILE));
            }
            Err(other) => panic!("wrong error class for a kind-{retired} checkpoint: {other}"),
            Ok(_) => panic!("kind-{retired} legacy checkpoint accepted"),
        }
        // The refusal must leave the tenant's files untouched.
        assert!(dir.join(dsg_store::CHECKPOINT_FILE).exists());
    }
}

/// A fully present WAL record with a corrupt body must fail recovery
/// loudly (it could resurface a stream the sketches never saw), unlike a
/// torn tail which is dropped silently.
#[test]
fn mid_log_corruption_fails_recovery_loudly() {
    let scratch = ScratchDir::new("wal-midflip");
    let reg = DurableRegistry::open(scratch.path(), StoreOptions::default()).unwrap();
    let g = reg.create("t", config()).unwrap();
    let updates = stream(7);
    for batch in updates.chunks(4).take(6) {
        g.apply(batch).unwrap();
    }
    let dir = g.dir().to_path_buf();
    drop((g, reg));

    let (_, seg) = list_segments(&dir).unwrap().pop().unwrap();
    let mut bytes = std::fs::read(&seg).unwrap();
    // Flip a payload byte of the FIRST record: fully present, bad sum.
    bytes[20] ^= 0xFF;
    std::fs::write(&seg, &bytes).unwrap();
    assert!(matches!(
        DurableRegistry::open(scratch.path(), StoreOptions::default()),
        Err(StoreError::CorruptLog { .. })
    ));
}
