//! Effective resistances.
//!
//! `R_e` is "the potential difference induced across `e` when a unit of
//! current is injected at one end and extracted at the other" (Section 2).
//! Theorem 7 (Spielman–Srivastava) samples edges with probability
//! `∝ w_e R_e log n / eps^2`; Lemma 22 relates the paper's robust
//! connectivity estimates to `R_e`. This module computes resistances
//! exactly with the CG solver.

use crate::laplacian::Laplacian;
use crate::solver;
use dsg_graph::{Edge, Vertex};

/// The effective resistance between `u` and `v`.
///
/// Requires `u` and `v` to be in the same connected component.
///
/// # Panics
///
/// Panics if `u == v` or either vertex is out of range.
///
/// # Examples
///
/// ```
/// use dsg_graph::gen;
/// use dsg_sparsifier::{laplacian::Laplacian, resistance};
///
/// let l = Laplacian::from_graph(&gen::path(5));
/// // Series resistors: R(0,4) = 4.
/// let r = resistance::effective_resistance(&l, 0, 4);
/// assert!((r - 4.0).abs() < 1e-7);
/// ```
pub fn effective_resistance(l: &Laplacian, u: Vertex, v: Vertex) -> f64 {
    assert_ne!(u, v, "resistance requires distinct vertices");
    let n = l.num_vertices();
    assert!((u as usize) < n && (v as usize) < n, "vertex out of range");
    let mut b = vec![0.0; n];
    b[u as usize] = 1.0;
    b[v as usize] = -1.0;
    let r = solver::solve(l, &b, 1e-11, 20 * n + 200);
    r.x[u as usize] - r.x[v as usize]
}

/// Effective resistances of all edges of the graph.
///
/// Runs one CG solve per edge — `O(m)` solves, intended for experiment
/// scales. Returns `(edge, weight, resistance)` triples.
pub fn all_edge_resistances(l: &Laplacian) -> Vec<(Edge, f64, f64)> {
    l.edge_triples()
        .iter()
        .map(|&(u, v, w)| (Edge::new(u, v), w, effective_resistance(l, u, v)))
        .collect()
}

/// The sum `Σ_e w_e R_e`, which equals `n - (number of components)` —
/// Foster's theorem; a strong internal consistency check used by tests and
/// the experiment harness.
pub fn foster_sum(l: &Laplacian) -> f64 {
    all_edge_resistances(l).iter().map(|(_, w, r)| w * r).sum()
}

/// Approximate effective resistances via Johnson–Lindenstrauss projection —
/// the trick that makes Spielman–Srivastava sampling near-linear time.
///
/// `R(u,v) = ‖W^{1/2} B L^+ (χ_u − χ_v)‖²` where `B` is the signed
/// incidence matrix; projecting the `m`-dimensional embedding onto
/// `q = O(log n / eps²)` random `±1/√q` directions preserves all pairwise
/// norms within `(1±eps)` whp. Construction cost: `q` Laplacian solves.
///
/// # Examples
///
/// ```
/// use dsg_graph::gen;
/// use dsg_sparsifier::{laplacian::Laplacian, resistance};
///
/// let l = Laplacian::from_graph(&gen::complete(20));
/// let est = resistance::ResistanceEstimator::new(&l, 60, 42);
/// let approx = est.estimate(0, 1);
/// let exact = resistance::effective_resistance(&l, 0, 1);
/// assert!((approx / exact - 1.0).abs() < 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct ResistanceEstimator {
    /// `z[r]` = row `r` of `Z = Q W^{1/2} B L^+` (one vector per
    /// projection direction).
    z: Vec<Vec<f64>>,
}

impl ResistanceEstimator {
    /// Builds the estimator with `q` projection rows (`O(log n / eps^2)`
    /// for `(1±eps)` accuracy).
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`.
    pub fn new(l: &Laplacian, q: usize, seed: u64) -> Self {
        assert!(q > 0, "need at least one projection row");
        let n = l.num_vertices();
        let mut rng = dsg_hash::SplitMix64::new(seed ^ 0x4A4C_5245_5349_5354); // "JLRESIST"
        let scale = 1.0 / (q as f64).sqrt();
        let z = (0..q)
            .map(|_| {
                // y = B^T W^{1/2} q_row: accumulate ±sqrt(w)/sqrt(q) per edge.
                let mut y = vec![0.0; n];
                for &(u, v, w) in l.edge_triples() {
                    let coin = if rng.next_u64() & 1 == 1 {
                        scale
                    } else {
                        -scale
                    };
                    let c = coin * w.sqrt();
                    y[u as usize] += c;
                    y[v as usize] -= c;
                }
                // Row of Z: L^+ y (y ⊥ 1 by construction).
                crate::solver::solve(l, &y, 1e-9, 20 * n + 200).x
            })
            .collect();
        Self { z }
    }

    /// Number of projection rows.
    pub fn num_rows(&self) -> usize {
        self.z.len()
    }

    /// The resistance estimate `‖Z(χ_u − χ_v)‖²`.
    ///
    /// # Panics
    ///
    /// Panics if `u == v`.
    pub fn estimate(&self, u: Vertex, v: Vertex) -> f64 {
        assert_ne!(u, v, "resistance requires distinct vertices");
        self.z
            .iter()
            .map(|row| {
                let d = row[u as usize] - row[v as usize];
                d * d
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsg_graph::{gen, Edge, WeightedGraph};

    #[test]
    fn complete_graph_resistance() {
        // K_n: R(u,v) = 2/n for every pair.
        let l = Laplacian::from_graph(&gen::complete(10));
        for v in 1..5 {
            let r = effective_resistance(&l, 0, v);
            assert!((r - 0.2).abs() < 1e-7, "R(0,{v})={r}");
        }
    }

    #[test]
    fn cycle_resistance() {
        // C_n: R between vertices at hop distance d is d(n-d)/n.
        let n = 12;
        let l = Laplacian::from_graph(&gen::cycle(n));
        for d in 1..6u32 {
            let expect = (d * (n as u32 - d)) as f64 / n as f64;
            let r = effective_resistance(&l, 0, d);
            assert!((r - expect).abs() < 1e-6, "d={d}: {r} vs {expect}");
        }
    }

    #[test]
    fn parallel_resistors() {
        // Two parallel unit edges are modeled as one edge of weight 2
        // (conductances add): R = 1/2.
        let g = WeightedGraph::from_edges(2, [(Edge::new(0, 1), 2.0)]);
        let l = Laplacian::from_weighted(&g);
        assert!((effective_resistance(&l, 0, 1) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn foster_theorem() {
        let g = gen::erdos_renyi(25, 0.3, 7);
        let comps = dsg_graph::components::num_components(&g);
        let l = Laplacian::from_graph(&g);
        let sum = foster_sum(&l);
        assert!(
            (sum - (25 - comps) as f64).abs() < 1e-4,
            "Foster sum {sum} vs {}",
            25 - comps
        );
    }

    #[test]
    fn bridge_has_unit_resistance() {
        // The barbell bridge edges are cut edges: R = 1 exactly.
        let g = gen::barbell(6, 3);
        let l = Laplacian::from_graph(&g);
        // Bridge path vertices: 5 -> 6 -> 7 -> 8 (right clique starts at 8).
        let r = effective_resistance(&l, 6, 7);
        assert!((r - 1.0).abs() < 1e-6, "bridge R={r}");
    }

    #[test]
    fn jl_estimator_tracks_exact_values() {
        let g = gen::erdos_renyi(30, 0.3, 9);
        let l = Laplacian::from_graph(&g);
        let est = ResistanceEstimator::new(&l, 100, 10);
        let mut worst: f64 = 0.0;
        for (e, _, exact) in all_edge_resistances(&l) {
            let approx = est.estimate(e.u(), e.v());
            worst = worst.max((approx / exact - 1.0).abs());
        }
        assert!(worst < 0.6, "worst JL error {worst}");
    }

    #[test]
    fn jl_accuracy_improves_with_rows() {
        let g = gen::complete(16);
        let l = Laplacian::from_graph(&g);
        let err = |q: usize, seed: u64| -> f64 {
            let est = ResistanceEstimator::new(&l, q, seed);
            let mut sum = 0.0;
            let mut count = 0;
            for (e, _, exact) in all_edge_resistances(&l) {
                sum += (est.estimate(e.u(), e.v()) / exact - 1.0).abs();
                count += 1;
            }
            sum / count as f64
        };
        // Average over a few seeds to avoid flaky comparisons.
        let coarse: f64 = (0..3).map(|s| err(8, s)).sum::<f64>() / 3.0;
        let fine: f64 = (0..3).map(|s| err(128, s)).sum::<f64>() / 3.0;
        assert!(
            fine < coarse,
            "JL error did not improve: {fine} vs {coarse}"
        );
    }

    #[test]
    fn resistance_bounded_by_distance() {
        // R(u,v) ≤ d(u,v) in unweighted graphs.
        let g = gen::grid(4, 4);
        let l = Laplacian::from_graph(&g);
        let d = dsg_graph::bfs::bfs_distances(&g.adjacency(), 0);
        for v in 1..16u32 {
            let r = effective_resistance(&l, 0, v);
            assert!(
                r <= d[v as usize] as f64 + 1e-6,
                "R(0,{v})={r} > d={}",
                d[v as usize]
            );
        }
    }
}
