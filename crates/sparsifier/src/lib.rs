//! Spectral sparsification via random spanners in dynamic streams
//! (Corollary 2 of Kapralov–Woodruff, PODC 2014).
//!
//! The paper's second contribution: plugging the two-pass `2^k`-spanner
//! into the KP12 reduction ("spectral sparsification via random spanners")
//! yields the first two-pass `(1±eps)`-spectral sparsifier with
//! `n^{1+o(1)}/eps^4` bits. This crate implements the full pipeline and the
//! numerical machinery to *verify* it:
//!
//! * [`laplacian`] — graph Laplacians and quadratic forms;
//! * [`solver`] — conjugate-gradient Laplacian solves (the application
//!   domain: SDD systems, per the paper's motivation);
//! * [`eigen`] — a dense Jacobi eigensolver, used to measure the *exact*
//!   spectral approximation `eps = max |x^T L_H x / x^T L_G x − 1|` on
//!   experiment-scale graphs;
//! * [`spectral`] — the spectral-similarity measurements;
//! * [`resistance`] — exact effective resistances (Theorem 7's sampling
//!   probabilities);
//! * [`ss08`] — the Spielman–Srivastava sampling baseline (Theorem 7);
//! * [`estimate`] — Algorithm 4: robust-connectivity estimation
//!   `q̂_{ρ,λ}(e)` through spanner-based distance oracles on subsampled
//!   edge sets;
//! * [`kp12`] — Algorithms 5 and 6: sampling by augmented spanners and the
//!   sparsifier assembly (Theorem 21 / Lemma 22);
//! * [`pipeline`] — the end-to-end **two-pass streaming sparsifier**: all
//!   spanner instances (estimation oracles and sampling rounds) run
//!   simultaneously over the same two passes;
//! * [`cut`] — cut-preservation checks (spectral ⟹ cut).
//!
//! # Examples
//!
//! ```
//! use dsg_graph::gen;
//! use dsg_sparsifier::{laplacian::Laplacian, spectral};
//!
//! let g = gen::complete(12);
//! let wg = gen::with_random_weights(&g, 1.0, 1.0, 1);
//! let l = Laplacian::from_weighted(&wg);
//! // The quadratic form of an indicator vector is the cut weight.
//! let mut x = vec![0.0; 12];
//! for i in 0..6 { x[i] = 1.0; }
//! assert_eq!(l.quadratic_form(&x), 36.0); // 6×6 crossing edges
//! ```

pub mod cut;
pub mod eigen;
pub mod estimate;
pub mod kp12;
pub mod laplacian;
pub mod pipeline;
pub mod resistance;
pub mod solver;
pub mod spectral;
pub mod ss08;
pub mod weighted;

pub use kp12::SparsifierParams;
pub use laplacian::Laplacian;
pub use pipeline::TwoPassSparsifier;
pub use weighted::WeightedTwoPassSparsifier;
