//! The Spielman–Srivastava sampling baseline (Theorem 7).
//!
//! "Let `H` be obtained by sampling edges of `G` independently with
//! probability `p_e = Θ(w_e R_e log n / eps^2)` ... and giving each sampled
//! edge weight `1/p_e`. Then whp `(1-eps) G ⪯ H ⪯ (1+eps) G`."
//!
//! This is the offline gold standard the experiments compare the streaming
//! sparsifier against (experiment E9).

use crate::laplacian::Laplacian;
use crate::resistance;
use dsg_graph::WeightedGraph;
use dsg_hash::SplitMix64;

/// Samples a spectral sparsifier by effective resistances.
///
/// `oversample` is the constant in `p_e = min(1, oversample · w_e R_e
/// log2(n) / eps^2)`.
///
/// # Panics
///
/// Panics if `eps` or `oversample` is not positive.
///
/// # Examples
///
/// ```
/// use dsg_graph::gen;
/// use dsg_sparsifier::ss08;
///
/// let g = gen::with_random_weights(&gen::complete(20), 1.0, 1.0, 1);
/// let h = ss08::sparsify(&g, 0.5, 0.5, 42);
/// assert!(h.num_edges() <= g.num_edges());
/// ```
pub fn sparsify(g: &WeightedGraph, eps: f64, oversample: f64, seed: u64) -> WeightedGraph {
    assert!(eps > 0.0, "eps must be positive");
    assert!(oversample > 0.0, "oversample must be positive");
    let n = g.num_vertices();
    let l = Laplacian::from_weighted(g);
    let mut rng = SplitMix64::new(seed);
    let logn = (n.max(2) as f64).log2();
    let mut edges = Vec::new();
    for (e, w, r) in resistance::all_edge_resistances(&l) {
        let p = (oversample * w * r * logn / (eps * eps)).min(1.0);
        if p > 0.0 && rng.next_f64() < p {
            edges.push((e, w / p));
        }
    }
    WeightedGraph::from_edges(n, edges)
}

/// The expected sparsifier size `Σ_e min(1, oversample · w_e R_e log n /
/// eps^2)` — for experiment tables (by Foster's theorem this is
/// `O(n log n / eps^2)`).
pub fn expected_size(g: &WeightedGraph, eps: f64, oversample: f64) -> f64 {
    let n = g.num_vertices();
    let l = Laplacian::from_weighted(g);
    let logn = (n.max(2) as f64).log2();
    resistance::all_edge_resistances(&l)
        .iter()
        .map(|(_, w, r)| (oversample * w * r * logn / (eps * eps)).min(1.0))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spectral;
    use dsg_graph::gen;

    #[test]
    fn preserves_spectrum_on_dense_graph() {
        // K_40: w_e R_e = 2/40, so p_e = 0.5·0.05·log2(40)/0.25 ≈ 0.53 —
        // a genuine compression that must stay spectrally close.
        let g = gen::with_random_weights(&gen::complete(40), 1.0, 1.0, 1);
        let h = sparsify(&g, 0.5, 0.5, 2);
        let eps = spectral::spectral_epsilon(
            &Laplacian::from_weighted(&g),
            &Laplacian::from_weighted(&h),
        );
        assert!(eps < 0.9, "eps={eps}");
        assert!(
            h.num_edges() < g.num_edges(),
            "{} vs {}",
            h.num_edges(),
            g.num_edges()
        );
    }

    #[test]
    fn bridges_always_kept() {
        // A bridge has w_e R_e = 1: p_e = 1 (for reasonable constants), so
        // it must survive.
        let g = gen::with_random_weights(&gen::barbell(8, 4), 1.0, 1.0, 3);
        let h = sparsify(&g, 0.5, 1.0, 4);
        for bridge in [(7u32, 8u32), (8, 9), (9, 10), (10, 11)] {
            assert!(
                h.weight(bridge.0, bridge.1).is_some(),
                "bridge {bridge:?} dropped"
            );
        }
    }

    #[test]
    fn total_weight_approximately_preserved() {
        let g = gen::with_random_weights(&gen::complete(30), 1.0, 1.0, 5);
        let h = sparsify(&g, 0.3, 2.0, 6);
        let ratio = h.total_weight() / g.total_weight();
        assert!((0.6..1.4).contains(&ratio), "weight ratio {ratio}");
    }

    #[test]
    fn expected_size_is_near_n_log_n() {
        let g = gen::with_random_weights(&gen::complete(50), 1.0, 1.0, 7);
        let size = expected_size(&g, 0.5, 1.0);
        // Foster: Σ w R = n-1 = 49, so expected ≈ 49·log2(50)/0.25 ≈ 1100,
        // but min(1,·) caps per-edge mass.
        assert!(size < g.num_edges() as f64);
        assert!(size > 50.0);
    }

    #[test]
    fn deterministic_in_seed() {
        let g = gen::with_random_weights(&gen::complete(15), 1.0, 1.0, 8);
        assert_eq!(sparsify(&g, 0.5, 1.0, 9), sparsify(&g, 0.5, 1.0, 9));
    }
}
