//! Robust-connectivity estimation — the paper's Algorithm 4 (`ESTIMATE`).
//!
//! For parameters `(ρ, λ)` the estimator maintains, for each of `J`
//! repetitions, a *nested* chain of subsampled edge sets
//! `E^j_1 = E ⊇ E^j_2 ⊇ … ⊇ E^j_T` (each level keeps every edge of the
//! previous one with probability 1/2) and a stretch-`λ` distance oracle
//! `O^j_t` over each — in this workspace, a `2^k`-spanner with `λ = 2^k`,
//! exactly the substitution the paper makes for the Thorup–Zwick oracles of
//! KP12.
//!
//! A query for edge `e = (u, v)` sets `β_j(t) = 1` when
//! `O^j_t(u, v) > λ^2` *measured without `e` itself* (a stretch-`λ` oracle
//! answering more than `λ^2` certifies true distance `> λ`), and returns
//! `q̂_{ρ,λ}(e) = 2^{-t}` for the smallest `t` at which at least a
//! `(1-δ)`-fraction of repetitions look far. Lemma 19 of KP12 (restated
//! as equation (1) in the paper) gives `q̂(e) = Ω(R_e / λ^2)`, which
//! experiment E15 verifies empirically.

use dsg_graph::bfs::UNREACHABLE;
use dsg_graph::{Edge, Graph, Vertex};
use dsg_hash::{SeedTree, SubsetSampler};
use std::collections::VecDeque;

/// Parameters of `ESTIMATE`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateParams {
    /// Number of independent repetitions `J` (`O(log n / δ^2)` in the
    /// paper; the experiments sweep the constant).
    pub j_reps: usize,
    /// Number of nested subsampling levels `T` (`log2 n^2` so every
    /// sampling rate used by Algorithm 5 has a matching estimate).
    pub t_levels: usize,
    /// The oracle stretch `λ` (here `2^k`).
    pub lambda: u64,
    /// The agreement fraction `1 - δ`.
    pub delta: f64,
}

impl EstimateParams {
    /// Paper-shaped defaults for an `n`-vertex graph and stretch `λ`.
    pub fn for_graph(n: usize, lambda: u64) -> Self {
        let logn = (n.max(2) as f64).log2();
        Self {
            j_reps: (logn.ceil() as usize).max(3),
            t_levels: (2.0 * logn).ceil() as usize,
            lambda,
            delta: 0.25,
        }
    }

    /// The far-threshold `λ^2` used on oracle answers.
    pub fn distance_threshold(&self) -> u64 {
        self.lambda * self.lambda
    }
}

/// Membership oracle for the nested sets `E^j_t`.
///
/// `e ∈ E^j_{t+1}` iff `e ∈ E^j_t` and an independent per-`(j, t)` coin
/// keeps it — evaluated lazily from hashes, never materialized.
#[derive(Debug, Clone)]
pub struct NestedSamplers {
    /// `coins[j][t]`: the rate-1/2 sampler deciding survival from level
    /// `t+1` to `t+2`.
    coins: Vec<Vec<SubsetSampler>>,
}

impl NestedSamplers {
    /// Creates samplers for `j_reps` repetitions and `t_levels` levels.
    pub fn new(j_reps: usize, t_levels: usize, seed: u64) -> Self {
        let tree = SeedTree::new(seed ^ 0x4E45_5354_5341_4D50); // "NESTSAMP"
        let coins = (0..j_reps)
            .map(|j| {
                (0..t_levels.saturating_sub(1))
                    .map(|t| {
                        SubsetSampler::at_rate_pow2(tree.child(j as u64).child(t as u64).seed(), 1)
                    })
                    .collect()
            })
            .collect();
        Self { coins }
    }

    /// Whether edge coordinate `coord` belongs to `E^j_t` (`t` is
    /// 1-indexed as in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `t == 0` or indices exceed the construction sizes.
    pub fn contains(&self, j: usize, t: usize, coord: u64) -> bool {
        assert!(t >= 1, "levels are 1-indexed");
        self.coins[j][..t - 1].iter().all(|c| c.contains(coord))
    }
}

/// The assembled estimator: one distance-oracle graph per `(j, t)`.
#[derive(Debug, Clone)]
pub struct ConnectivityEstimator {
    params: EstimateParams,
    /// `oracles[j][t-1]`: the stretch-λ oracle graph for `E^j_t`.
    oracles: Vec<Vec<OracleGraph>>,
}

/// Adjacency of one oracle (spanner) graph.
#[derive(Debug, Clone)]
struct OracleGraph {
    adj: Vec<Vec<Vertex>>,
}

impl OracleGraph {
    fn new(n: usize, g: &Graph) -> Self {
        let mut adj = vec![Vec::new(); n];
        for e in g.edges() {
            adj[e.u() as usize].push(e.v());
            adj[e.v() as usize].push(e.u());
        }
        Self { adj }
    }

    /// Bounded BFS distance from `u` to `v`, ignoring the direct edge
    /// `{u, v}`; `UNREACHABLE` beyond `radius`.
    fn distance_without_edge(&self, u: Vertex, v: Vertex, radius: u32) -> u32 {
        if u == v {
            return 0;
        }
        let mut dist = vec![UNREACHABLE; self.adj.len()];
        let mut queue = VecDeque::new();
        dist[u as usize] = 0;
        queue.push_back(u);
        while let Some(x) = queue.pop_front() {
            let dx = dist[x as usize];
            if dx >= radius {
                continue;
            }
            for &y in &self.adj[x as usize] {
                if (x == u && y == v) || (x == v && y == u) {
                    continue; // exclude the queried edge itself
                }
                if dist[y as usize] == UNREACHABLE {
                    dist[y as usize] = dx + 1;
                    if y == v {
                        return dist[y as usize];
                    }
                    queue.push_back(y);
                }
            }
        }
        dist[v as usize]
    }
}

impl ConnectivityEstimator {
    /// Builds the estimator from pre-constructed oracle graphs
    /// (`graphs[j][t-1]` = spanner of `E^j_t`), as the streaming pipeline
    /// does.
    ///
    /// # Panics
    ///
    /// Panics if the grid shape does not match `params`.
    pub fn from_oracle_graphs(n: usize, params: EstimateParams, graphs: &[Vec<Graph>]) -> Self {
        assert_eq!(graphs.len(), params.j_reps, "J mismatch");
        for row in graphs {
            assert_eq!(row.len(), params.t_levels, "T mismatch");
        }
        let oracles = graphs
            .iter()
            .map(|row| row.iter().map(|g| OracleGraph::new(n, g)).collect())
            .collect();
        Self { params, oracles }
    }

    /// Builds the estimator offline: subsample `g` with `samplers` and use
    /// the offline spanner construction as the oracle (for tests and
    /// experiments that isolate `ESTIMATE` from the streaming machinery).
    pub fn from_graph_offline(
        g: &Graph,
        params: EstimateParams,
        samplers: &NestedSamplers,
        spanner_k: usize,
        seed: u64,
    ) -> Self {
        let n = g.num_vertices();
        let tree = SeedTree::new(seed ^ 0x4553_5449_4F52_4143); // "ESTIORAC"
        let graphs: Vec<Vec<Graph>> = (0..params.j_reps)
            .map(|j| {
                (1..=params.t_levels)
                    .map(|t| {
                        let sub = Graph::from_edges(
                            n,
                            g.edges()
                                .iter()
                                .filter(|e| samplers.contains(j, t, e.index(n)))
                                .copied(),
                        );
                        let sp = dsg_spanner::offline::build_spanner(
                            &sub,
                            dsg_spanner::SpannerParams::new(
                                spanner_k,
                                tree.child(j as u64).child(t as u64).seed(),
                            ),
                        );
                        sp.spanner
                    })
                    .collect()
            })
            .collect();
        Self::from_oracle_graphs(n, params, &graphs)
    }

    /// The estimate `q̂_{ρ,λ}(e) = 2^{-t}`.
    pub fn query(&self, e: Edge) -> f64 {
        2.0f64.powi(-(self.query_level(e) as i32))
    }

    /// The level `t` with `q̂(e) = 2^{-t}` (1-indexed).
    pub fn query_level(&self, e: Edge) -> usize {
        let threshold = self.params.distance_threshold() as u32;
        let need = ((1.0 - self.params.delta) * self.params.j_reps as f64).ceil() as usize;
        for t in 1..=self.params.t_levels {
            let mut far = 0usize;
            for j in 0..self.params.j_reps {
                let d = self.oracles[j][t - 1].distance_without_edge(e.u(), e.v(), threshold + 1);
                if d == UNREACHABLE || d > threshold {
                    far += 1;
                }
            }
            if far >= need {
                return t;
            }
        }
        self.params.t_levels
    }

    /// The parameters this estimator was built with.
    pub fn params(&self) -> &EstimateParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsg_graph::gen;

    fn estimator(g: &Graph, lambda_k: usize, seed: u64) -> ConnectivityEstimator {
        let params = EstimateParams::for_graph(g.num_vertices(), 1 << lambda_k);
        let samplers = NestedSamplers::new(params.j_reps, params.t_levels, seed);
        ConnectivityEstimator::from_graph_offline(g, params, &samplers, lambda_k, seed ^ 1)
    }

    #[test]
    fn nested_samplers_are_nested() {
        let s = NestedSamplers::new(3, 10, 1);
        for j in 0..3 {
            for coord in 0..2000u64 {
                for t in 2..=10 {
                    if s.contains(j, t, coord) {
                        assert!(s.contains(j, t - 1, coord), "nesting violated at t={t}");
                    }
                }
            }
        }
    }

    #[test]
    fn nested_samplers_halve() {
        let s = NestedSamplers::new(1, 12, 2);
        let mut prev = 40_000usize;
        for t in 2..=6 {
            let count = (0..40_000u64).filter(|&c| s.contains(0, t, c)).count();
            let expect = prev / 2;
            assert!(
                (count as f64 - expect as f64).abs() < 6.0 * (expect as f64).sqrt() + 8.0,
                "t={t}: {count} vs {expect}"
            );
            prev = count;
        }
    }

    #[test]
    fn bridge_gets_large_q() {
        // The barbell bridge has R_e = 1: its endpoints separate under any
        // subsampling, so q̂ must be large (small t).
        let g = gen::barbell(8, 1);
        let est = estimator(&g, 2, 3);
        let bridge = Edge::new(7, 8);
        let level = est.query_level(bridge);
        assert!(
            level <= 2,
            "bridge level {level} (q̂ = 2^-{level}) too small"
        );
    }

    #[test]
    fn clique_edges_get_small_q() {
        // Inside K_20, R_e = 2/20 = 0.1: endpoints stay λ-close under heavy
        // subsampling, so q̂ should be far below the bridge's.
        let g = gen::complete(20);
        let est = estimator(&g, 2, 4);
        let e = Edge::new(0, 1);
        let level = est.query_level(e);
        assert!(level >= 3, "clique edge level {level} too large");
    }

    #[test]
    fn q_tracks_resistance_ordering() {
        // Pairs ordered by effective resistance should be ordered by q̂
        // (equation (1) of the paper): bridge >> clique-internal.
        let g = gen::barbell(10, 1);
        let est = estimator(&g, 2, 5);
        let q_bridge = est.query(Edge::new(9, 10));
        let q_inner = est.query(Edge::new(0, 1));
        assert!(
            q_bridge > q_inner,
            "q(bridge)={q_bridge} should exceed q(inner)={q_inner}"
        );
    }

    #[test]
    fn oracle_excludes_queried_edge() {
        // A path's only connection is the edge itself: with it excluded,
        // endpoints are far at every level.
        let g = gen::path(10);
        let est = estimator(&g, 2, 6);
        let level = est.query_level(Edge::new(4, 5));
        assert_eq!(level, 1, "cut edge must be classified at t=1");
    }
}
