//! The end-to-end two-pass streaming spectral sparsifier (Corollary 2).
//!
//! Everything runs over the *same two passes* of the dynamic stream:
//!
//! * `J × T` two-pass spanners on the nested subsample filters `E^j_t`
//!   become the distance oracles of `ESTIMATE` (Algorithm 4);
//! * `Z × H` two-pass *augmented* spanners on the independent rate-`2^{-j}`
//!   filters `E_{s,j}` implement `SAMPLE-AUGMENTED-SPANNER` (Algorithm 5);
//! * after pass two, each augmented spanner's observed edge set `Ω(R)` is
//!   weighted by the `ESTIMATE` answers (`2^{j}` when `q̂(e) = 2^{-j}`, else
//!   0) and the `Z` rounds are averaged (Algorithm 6).
//!
//! The sampler filters are evaluated from hashes (Section 6.3's
//! derandomization note: a Nisan-style generator or `O(log n)`-wise
//! independence replaces the `Ω(n^2)` perfect random bits; see
//! `dsg_hash::nisan`).

use crate::estimate::{ConnectivityEstimator, NestedSamplers};
use crate::kp12::SparsifierParams;
use dsg_graph::stream::StreamUpdate;
use dsg_graph::{
    FilteredMultiset, Graph, GraphStream, SegmentDelta, StreamAlgorithm, WeightedGraph,
};
use dsg_hash::{SeedTree, SubsetSampler};
use dsg_spanner::{SpannerParams, TwoPassSpanner};
use dsg_util::SpaceUsage;
use std::collections::HashMap;

/// Execution statistics of the streaming sparsifier.
#[derive(Debug, Clone, Default)]
pub struct PipelineStats {
    /// Total measured sketch bytes across all spanner instances (peak of
    /// the two passes).
    pub sketch_bytes: usize,
    /// Number of estimator spanner instances (`J × T`).
    pub estimate_instances: usize,
    /// Number of sampling spanner instances (`Z × H`).
    pub sample_instances: usize,
    /// Candidate edges observed across sampling rounds.
    pub observed_candidates: usize,
}

/// Output of the pipeline.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// The weighted sparsifier.
    pub sparsifier: WeightedGraph,
    /// Statistics.
    pub stats: PipelineStats,
}

/// The two-pass streaming sparsifier (implements [`StreamAlgorithm`];
/// each pass can also be sharded across threads and recombined with
/// [`merge_pass_state`](TwoPassSparsifier::merge_pass_state)).
#[derive(Debug, Clone)]
pub struct TwoPassSparsifier {
    n: usize,
    params: SparsifierParams,
    nested: NestedSamplers,
    /// `estimate_spanners[j][t-1]` over filter `E^j_t`.
    estimate_spanners: Vec<Vec<TwoPassSpanner>>,
    /// `sample_filters[s][jlev-1]` at rate `2^{-jlev}`.
    sample_filters: Vec<Vec<SubsetSampler>>,
    /// `sample_spanners[s][jlev-1]` over the corresponding filter.
    sample_spanners: Vec<Vec<TwoPassSpanner>>,
    stats: PipelineStats,
    finished: bool,
}

impl TwoPassSparsifier {
    /// Creates the pipeline for unweighted graphs on `n` vertices.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize, params: SparsifierParams) -> Self {
        assert!(n >= 2, "need at least two vertices");
        let tree = SeedTree::new(params.seed ^ 0x5350_4152_5349_4659); // "SPARSIFY"
        let est = params.estimate_params(n);
        let nested = NestedSamplers::new(est.j_reps, est.t_levels, tree.child(0).seed());
        let estimate_spanners: Vec<Vec<TwoPassSpanner>> = (0..est.j_reps)
            .map(|j| {
                (1..=est.t_levels)
                    .map(|t| {
                        TwoPassSpanner::new(
                            n,
                            SpannerParams::new(
                                params.k,
                                tree.child(1).child(j as u64).child(t as u64).seed(),
                            ),
                        )
                    })
                    .collect()
            })
            .collect();
        let z = params.z_rounds(n);
        let h = params.h_levels(n);
        let sample_filters: Vec<Vec<SubsetSampler>> = (0..z)
            .map(|s| {
                (1..=h)
                    .map(|j| {
                        SubsetSampler::at_rate_pow2(
                            tree.child(2).child(s as u64).child(j as u64).seed(),
                            j as u32,
                        )
                    })
                    .collect()
            })
            .collect();
        let sample_spanners: Vec<Vec<TwoPassSpanner>> = (0..z)
            .map(|s| {
                (1..=h)
                    .map(|j| {
                        TwoPassSpanner::new(
                            n,
                            SpannerParams::new(
                                params.k,
                                tree.child(3).child(s as u64).child(j as u64).seed(),
                            ),
                        )
                    })
                    .collect()
            })
            .collect();
        let stats = PipelineStats {
            estimate_instances: est.j_reps * est.t_levels,
            sample_instances: z * h,
            ..Default::default()
        };
        Self {
            n,
            params,
            nested,
            estimate_spanners,
            sample_filters,
            sample_spanners,
            stats,
            finished: false,
        }
    }

    /// The construction parameters.
    pub fn params(&self) -> &SparsifierParams {
        &self.params
    }

    /// Adds `other`'s pass-local linear state into `self` — the
    /// distributed-ingest merge, delegated to every inner
    /// [`TwoPassSpanner::merge_pass_state`]. The pipeline is a bank of
    /// two-pass spanners behind deterministic subsample filters, so its
    /// per-pass stream state is linear exactly when theirs is.
    ///
    /// # Panics
    ///
    /// Panics if `other` was built with different `n` or params, or sits
    /// in a different pass.
    pub fn merge_pass_state(&mut self, other: &Self) {
        assert_eq!(self.n, other.n, "vertex count mismatch");
        assert_eq!(self.params.seed, other.params.seed, "seed mismatch");
        assert!(
            self.estimate_spanners.len() == other.estimate_spanners.len()
                && self
                    .estimate_spanners
                    .iter()
                    .zip(&other.estimate_spanners)
                    .all(|(a, b)| a.len() == b.len())
                && self.sample_spanners.len() == other.sample_spanners.len()
                && self
                    .sample_spanners
                    .iter()
                    .zip(&other.sample_spanners)
                    .all(|(a, b)| a.len() == b.len()),
            "spanner bank shape mismatch (different eps/z/j parameters?)"
        );
        for (mine, theirs) in self
            .estimate_spanners
            .iter_mut()
            .zip(&other.estimate_spanners)
        {
            for (a, b) in mine.iter_mut().zip(theirs) {
                a.merge_pass_state(b);
            }
        }
        for (mine, theirs) in self.sample_spanners.iter_mut().zip(&other.sample_spanners) {
            for (a, b) in mine.iter_mut().zip(theirs) {
                a.merge_pass_state(b);
            }
        }
    }

    /// Assembles the sparsifier after both passes.
    ///
    /// Consumes the pipeline; returns `None` if the passes did not run.
    pub fn into_output(self) -> Option<PipelineOutput> {
        self.assemble()
    }

    /// Assembles the sparsifier after both passes **without consuming**
    /// the pipeline — the retaining-mode accessor: the instance (and
    /// every inner spanner's linear state) stays alive to be
    /// [`patch`](TwoPassSparsifier::patch)ed to the next segment.
    ///
    /// Returns `None` if the passes did not run. The weight accumulation
    /// runs in the same deterministic order as always (estimate rows in
    /// `j` then `t` order; sample rows in `s` then level order, observed
    /// edges in their recorded order), so repeated assembly of the same
    /// state is bit-identical.
    pub fn assemble(&self) -> Option<PipelineOutput> {
        if !self.finished {
            return None;
        }
        let est_params = self.params.estimate_params(self.n);
        // Collect the estimator oracle graphs.
        let mut oracle_graphs: Vec<Vec<Graph>> = Vec::with_capacity(est_params.j_reps);
        for row in &self.estimate_spanners {
            let mut graphs = Vec::with_capacity(est_params.t_levels);
            for alg in row {
                graphs.push(alg.output()?.spanner.clone());
            }
            oracle_graphs.push(graphs);
        }
        let estimator =
            ConnectivityEstimator::from_oracle_graphs(self.n, est_params, &oracle_graphs);
        // Algorithm 5 + 6: weight observed edges by matching q̂ levels.
        let z = self.sample_spanners.len();
        let mut weights: HashMap<dsg_graph::Edge, f64> = HashMap::new();
        let mut level_cache: HashMap<dsg_graph::Edge, usize> = HashMap::new();
        let mut observed_candidates = 0usize;
        for row in &self.sample_spanners {
            for (jlev, alg) in row.iter().enumerate() {
                let jlev = jlev + 1;
                let out = alg.output()?;
                for &e in &out.observed_edges {
                    observed_candidates += 1;
                    let level = *level_cache
                        .entry(e)
                        .or_insert_with(|| estimator.query_level(e));
                    if level == jlev {
                        *weights.entry(e).or_insert(0.0) += (1u64 << jlev) as f64 / z as f64;
                    }
                }
            }
        }
        let mut stats = self.stats.clone();
        stats.observed_candidates = observed_candidates;
        let sparsifier =
            WeightedGraph::from_edges(self.n, weights.into_iter().filter(|&(_, w)| w > 0.0));
        Some(PipelineOutput { sparsifier, stats })
    }

    /// Switches every inner spanner into retaining mode (see
    /// [`TwoPassSpanner::retaining`]): after a run, the pipeline holds
    /// all pass-facing linear state and can be patched across epochs.
    pub fn retaining(mut self) -> Self {
        for row in &mut self.estimate_spanners {
            for alg in row {
                alg.set_retaining();
            }
        }
        for row in &mut self.sample_spanners {
            for alg in row {
                alg.set_retaining();
            }
        }
        self
    }

    /// Advances a completed retaining-mode run to a nearby segment,
    /// returning output **bit-identical** to a from-scratch
    /// [`run_sparsifier_net`] over `cur`.
    ///
    /// The pipeline is a bank of two-pass spanners behind deterministic
    /// subsample filters, so the delta routes: each inner spanner receives
    /// the sub-delta surviving its filter (restriction commutes with
    /// diffing — the filters are functions of edge identity) and patches
    /// itself in O(its changes); a spanner whose sub-delta is empty is
    /// skipped outright, its state and output already being exactly those
    /// of a full rebuild. The final weighting (Algorithm 6) is recomputed
    /// by [`assemble`](TwoPassSparsifier::assemble) — a deterministic
    /// function of bit-identical inner states.
    ///
    /// `delta` must be `cur.diff(&prev)` for the segment `prev` this
    /// pipeline currently represents.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline has not completed both passes, is not in
    /// retaining mode, or `cur` disagrees on the vertex count.
    pub fn patch<M>(&mut self, delta: &SegmentDelta, cur: &M) -> PipelineOutput
    where
        M: dsg_graph::EdgeMultiset + ?Sized,
    {
        assert!(self.finished, "patch requires a completed run");
        assert_eq!(cur.num_vertices(), self.n, "vertex count mismatch");
        let nested = &self.nested;
        for (j, row) in self.estimate_spanners.iter_mut().enumerate() {
            for (t0, alg) in row.iter_mut().enumerate() {
                let pred = |coord: u64| nested.contains(j, t0 + 1, coord);
                let sub = delta.filtered(self.n, &pred);
                if sub.is_empty() {
                    continue;
                }
                alg.patch(&sub, &FilteredMultiset::new(cur, pred));
            }
        }
        let filters = &self.sample_filters;
        for (s, row) in self.sample_spanners.iter_mut().enumerate() {
            for (j0, alg) in row.iter_mut().enumerate() {
                let pred = |coord: u64| filters[s][j0].contains(coord);
                let sub = delta.filtered(self.n, &pred);
                if sub.is_empty() {
                    continue;
                }
                alg.patch(&sub, &FilteredMultiset::new(cur, pred));
            }
        }
        self.stats.sketch_bytes = self.stats.sketch_bytes.max(self.space_bytes());
        self.assemble().expect("patched pipeline completed")
    }
}

impl StreamAlgorithm for TwoPassSparsifier {
    fn num_passes(&self) -> usize {
        2
    }

    fn begin_pass(&mut self, pass: usize) {
        for row in &mut self.estimate_spanners {
            for alg in row {
                alg.begin_pass(pass);
            }
        }
        for row in &mut self.sample_spanners {
            for alg in row {
                alg.begin_pass(pass);
            }
        }
    }

    fn process(&mut self, update: &StreamUpdate) {
        let coord = update.edge.index(self.n);
        for (j, row) in self.estimate_spanners.iter_mut().enumerate() {
            for (t0, alg) in row.iter_mut().enumerate() {
                if self.nested.contains(j, t0 + 1, coord) {
                    alg.process(update);
                }
            }
        }
        for (s, row) in self.sample_spanners.iter_mut().enumerate() {
            for (j0, alg) in row.iter_mut().enumerate() {
                if self.sample_filters[s][j0].contains(coord) {
                    alg.process(update);
                }
            }
        }
    }

    fn end_pass(&mut self, pass: usize) {
        for row in &mut self.estimate_spanners {
            for alg in row {
                alg.end_pass(pass);
            }
        }
        for row in &mut self.sample_spanners {
            for alg in row {
                alg.end_pass(pass);
            }
        }
        self.stats.sketch_bytes = self.stats.sketch_bytes.max(self.space_bytes());
        if pass == 1 {
            self.finished = true;
        }
    }
}

impl SpaceUsage for TwoPassSparsifier {
    fn space_bytes(&self) -> usize {
        let est: usize = self
            .estimate_spanners
            .iter()
            .map(|row| row.iter().map(SpaceUsage::space_bytes).sum::<usize>())
            .sum();
        let smp: usize = self
            .sample_spanners
            .iter()
            .map(|row| row.iter().map(SpaceUsage::space_bytes).sum::<usize>())
            .sum();
        est + smp
    }
}

/// Convenience: runs the streaming sparsifier over a stream.
///
/// # Examples
///
/// ```no_run
/// use dsg_graph::{gen, GraphStream};
/// use dsg_sparsifier::{pipeline, SparsifierParams};
///
/// let g = gen::erdos_renyi(48, 0.3, 1);
/// let stream = GraphStream::with_churn(&g, 0.5, 2);
/// let out = pipeline::run_sparsifier(&stream, SparsifierParams::new(2, 0.5, 3));
/// println!("{} edges", out.sparsifier.num_edges());
/// ```
pub fn run_sparsifier(stream: &GraphStream, params: SparsifierParams) -> PipelineOutput {
    let mut alg = TwoPassSparsifier::new(stream.num_vertices(), params);
    dsg_graph::pass::run(&mut alg, stream);
    alg.into_output().expect("both passes completed")
}

/// Runs the streaming sparsifier over a **net edge multiset** view — the
/// generalized entry point the epoch/durability layers rebuild cut
/// artifacts from in O(current edges) per pass.
///
/// Bit-identical to [`run_sparsifier`] on any raw stream with the same
/// net effect: the pipeline is a bank of two-pass spanners behind
/// deterministic subsample filters, so its per-pass state is linear
/// exactly when theirs is, and the post-pass weighting (Algorithm 6) is a
/// deterministic function of that state.
pub fn run_sparsifier_net<M>(view: &M, params: SparsifierParams) -> PipelineOutput
where
    M: dsg_graph::EdgeMultiset + ?Sized,
{
    let mut alg = TwoPassSparsifier::new(view.num_vertices(), params);
    dsg_graph::pass::run_multiset(&mut alg, view);
    alg.into_output().expect("both passes completed")
}

/// [`run_sparsifier_net`] in retaining mode: same output (bit for bit),
/// plus the pipeline instance holding every inner spanner's linear state
/// — the seed of an O(changes) [`patch`](TwoPassSparsifier::patch) chain
/// across epochs.
pub fn run_sparsifier_net_retained<M>(
    view: &M,
    params: SparsifierParams,
) -> (PipelineOutput, TwoPassSparsifier)
where
    M: dsg_graph::EdgeMultiset + ?Sized,
{
    let mut alg = TwoPassSparsifier::new(view.num_vertices(), params).retaining();
    dsg_graph::pass::run_multiset(&mut alg, view);
    let out = alg.assemble().expect("both passes completed");
    (out, alg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kp12::measure_quality;
    use dsg_graph::gen;

    fn small_params(seed: u64) -> SparsifierParams {
        let mut p = SparsifierParams::new(2, 0.5, seed);
        p.z_factor = 0.05;
        p.j_factor = 0.4;
        p
    }

    #[test]
    fn produces_connected_sparsifier_of_clique() {
        let g = gen::complete(24);
        let stream = GraphStream::insert_only(&g, 1);
        let out = run_sparsifier(&stream, small_params(2));
        assert!(out.sparsifier.num_edges() > 0, "empty sparsifier");
        assert_eq!(
            dsg_graph::components::num_components(&out.sparsifier.skeleton()),
            1,
            "sparsifier disconnected"
        );
    }

    #[test]
    fn sparsifier_edges_are_graph_edges() {
        let g = gen::erdos_renyi(30, 0.4, 3);
        let stream = GraphStream::with_churn(&g, 0.5, 4);
        let out = run_sparsifier(&stream, small_params(5));
        for (e, _) in out.sparsifier.edges() {
            assert!(g.has_edge(e.u(), e.v()), "non-edge {e} in sparsifier");
        }
    }

    #[test]
    fn spectral_quality_is_bounded() {
        // With laptop constants we don't hit the paper's eps, but the
        // sparsifier must be in the right spectral ballpark (E8 sweeps the
        // constants; this is a smoke bound).
        let g = gen::complete(24);
        let stream = GraphStream::insert_only(&g, 5);
        let out = run_sparsifier(&stream, small_params(6));
        let q = measure_quality(&g, &out.sparsifier);
        assert!(
            q.epsilon < 1.0,
            "eps={} (disconnection-level error)",
            q.epsilon
        );
    }

    #[test]
    fn net_rebuild_matches_stream_replay() {
        // The compaction correctness ground for cut artifacts: the whole
        // pipeline, rebuilt from the net edge multiset, produces the same
        // weighted sparsifier as a raw churn-stream replay.
        let g = gen::erdos_renyi(26, 0.3, 13);
        let stream = GraphStream::with_churn(&g, 1.5, 14);
        let params = small_params(15);
        let raw = run_sparsifier(&stream, params);
        let net = run_sparsifier_net(&stream.net_multiset(), params);
        assert_eq!(raw.sparsifier, net.sparsifier);
        assert_eq!(raw.stats.observed_candidates, net.stats.observed_candidates);
    }

    #[test]
    fn compresses_dense_graphs() {
        let g = gen::complete(32);
        let stream = GraphStream::insert_only(&g, 7);
        let out = run_sparsifier(&stream, small_params(8));
        assert!(
            out.sparsifier.num_edges() < g.num_edges(),
            "{} vs {}",
            out.sparsifier.num_edges(),
            g.num_edges()
        );
    }

    #[test]
    fn stats_populated() {
        let g = gen::erdos_renyi(20, 0.4, 9);
        let stream = GraphStream::insert_only(&g, 10);
        let out = run_sparsifier(&stream, small_params(11));
        assert!(out.stats.sketch_bytes > 0);
        assert!(out.stats.estimate_instances > 0);
        assert!(out.stats.sample_instances > 0);
    }

    #[test]
    fn retained_run_and_assemble_match_plain_run() {
        let g = gen::erdos_renyi(24, 0.35, 21);
        let net = GraphStream::with_churn(&g, 1.0, 22).net_multiset();
        let params = small_params(23);
        let plain = run_sparsifier_net(&net, params);
        let (kept, alg) = run_sparsifier_net_retained(&net, params);
        assert_eq!(plain.sparsifier, kept.sparsifier);
        // Assembly is repeatable: same state, same bits.
        assert_eq!(
            alg.assemble().expect("finished").sparsifier,
            plain.sparsifier
        );
    }

    #[test]
    fn patch_is_bit_identical_to_full_rebuild() {
        // Light and heavy churn alike: the patched pipeline must equal a
        // from-scratch run on the new segment, weights and all.
        let params = small_params(31);
        let g = gen::erdos_renyi(24, 0.4, 32);
        let prev_net = GraphStream::insert_only(&g, 33).net_multiset();
        for (kill_stride, add_seed) in [(7usize, 34u64), (2, 35)] {
            // Drop every `kill_stride`-th edge, add a few fresh non-edges.
            let mut edges: Vec<dsg_graph::Edge> = g
                .edges()
                .iter()
                .enumerate()
                .filter(|(i, _)| i % kill_stride != 0)
                .map(|(_, e)| *e)
                .collect();
            let have: std::collections::HashSet<dsg_graph::Edge> = edges.iter().copied().collect();
            let mut added = 0;
            'hunt: for u in 0..24u32 {
                for v in (u + 1)..24 {
                    let e = dsg_graph::Edge::new(u, v);
                    if !g.has_edge(u, v) && !have.contains(&e) {
                        edges.push(e);
                        added += 1;
                        if added >= 5 {
                            break 'hunt;
                        }
                    }
                }
            }
            let cur = Graph::from_edges(24, edges);
            let cur_net = GraphStream::insert_only(&cur, add_seed).net_multiset();
            let delta = cur_net.diff(&prev_net);
            assert!(!delta.is_empty());

            let (_, mut alg) = run_sparsifier_net_retained(&prev_net, params);
            let patched = alg.patch(&delta, &cur_net);
            let full = run_sparsifier_net(&cur_net, params);
            assert_eq!(patched.sparsifier, full.sparsifier, "stride {kill_stride}");
            assert_eq!(
                patched.stats.observed_candidates,
                full.stats.observed_candidates
            );
        }
    }
}
