//! Conjugate-gradient solves of Laplacian systems.
//!
//! Spectral sparsifiers were "instrumental in obtaining the first
//! near-linear time algorithm for solving SDD linear systems" (the paper's
//! framing); this solver closes the loop — the `laplacian_solver` example
//! solves on the sparsifier and checks the answer against the full graph.
//!
//! Laplacians are singular (constants are in the null space), so the solver
//! works in the subspace orthogonal to the all-ones vector and requires the
//! right-hand side to sum to zero. Graphs must be connected for a unique
//! (mean-zero) solution.

use crate::laplacian::Laplacian;

/// Result of a CG solve.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// The mean-zero solution `x` with `Lx ≈ b`.
    pub x: Vec<f64>,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Final residual norm `‖Lx - b‖₂`.
    pub residual: f64,
}

/// Solves `Lx = b` by conjugate gradients in the space orthogonal to 1.
///
/// # Panics
///
/// Panics if `b` does not (approximately) sum to zero or dimensions
/// mismatch.
///
/// # Examples
///
/// ```
/// use dsg_graph::gen;
/// use dsg_sparsifier::{laplacian::Laplacian, solver};
///
/// let l = Laplacian::from_graph(&gen::path(3));
/// // Inject one unit of current at vertex 0, extract at vertex 2.
/// let r = solver::solve(&l, &[1.0, 0.0, -1.0], 1e-10, 1000);
/// // Potential difference across the path = resistance = 2.
/// assert!((r.x[0] - r.x[2] - 2.0).abs() < 1e-8);
/// ```
pub fn solve(l: &Laplacian, b: &[f64], tol: f64, max_iter: usize) -> SolveResult {
    let n = l.num_vertices();
    assert_eq!(b.len(), n, "dimension mismatch");
    let bsum: f64 = b.iter().sum();
    assert!(
        bsum.abs() < 1e-6 * (1.0 + norm(b)),
        "right-hand side must be orthogonal to the all-ones vector (sum = {bsum})"
    );
    let b = project(b);
    let mut x = vec![0.0; n];
    let mut r = b.clone();
    let mut p = r.clone();
    let mut rs = dot(&r, &r);
    let bnorm = norm(&b).max(1e-300);
    let mut iterations = 0;
    for _ in 0..max_iter {
        if rs.sqrt() <= tol * bnorm {
            break;
        }
        let lp = project(&l.matvec(&p));
        let plp = dot(&p, &lp);
        if plp <= 0.0 {
            break; // numerically exhausted
        }
        let alpha = rs / plp;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * lp[i];
        }
        let rs_new = dot(&r, &r);
        let beta = rs_new / rs;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs = rs_new;
        iterations += 1;
    }
    let x = project(&x);
    let residual = {
        let lx = l.matvec(&x);
        let diff: Vec<f64> = lx.iter().zip(&b).map(|(a, c)| a - c).collect();
        norm(&diff)
    };
    SolveResult {
        x,
        iterations,
        residual,
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Projects onto the subspace orthogonal to the all-ones vector.
fn project(v: &[f64]) -> Vec<f64> {
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    v.iter().map(|x| x - mean).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsg_graph::gen;

    #[test]
    fn solves_path_potentials() {
        let l = Laplacian::from_graph(&gen::path(5));
        let mut b = vec![0.0; 5];
        b[0] = 1.0;
        b[4] = -1.0;
        let r = solve(&l, &b, 1e-12, 1000);
        // Unit resistors in series: successive potential drops of 1.
        for i in 0..4 {
            assert!((r.x[i] - r.x[i + 1] - 1.0).abs() < 1e-8, "drop {i}");
        }
        assert!(r.residual < 1e-8);
    }

    #[test]
    fn solution_is_mean_zero() {
        let l = Laplacian::from_graph(&gen::erdos_renyi(30, 0.3, 1));
        let mut b = vec![0.0; 30];
        b[3] = 1.0;
        b[17] = -1.0;
        let r = solve(&l, &b, 1e-10, 2000);
        assert!(r.x.iter().sum::<f64>().abs() < 1e-8);
        assert!(r.residual < 1e-6);
    }

    #[test]
    fn converges_fast_on_expander() {
        let l = Laplacian::from_graph(&gen::complete(40));
        let mut b = vec![0.0; 40];
        b[0] = 1.0;
        b[39] = -1.0;
        let r = solve(&l, &b, 1e-10, 1000);
        assert!(r.iterations < 20, "iterations={}", r.iterations);
        // K_n effective resistance = 2/n.
        assert!((r.x[0] - r.x[39] - 2.0 / 40.0).abs() < 1e-8);
    }

    #[test]
    fn weighted_resistors() {
        use dsg_graph::{Edge, WeightedGraph};
        // Two resistors in series: conductances 2 and 0.5 → resistances
        // 0.5 and 2 → total 2.5.
        let g = WeightedGraph::from_edges(3, [(Edge::new(0, 1), 2.0), (Edge::new(1, 2), 0.5)]);
        let l = Laplacian::from_weighted(&g);
        let r = solve(&l, &[1.0, 0.0, -1.0], 1e-12, 100);
        assert!((r.x[0] - r.x[2] - 2.5).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "orthogonal")]
    fn unbalanced_rhs_panics() {
        let l = Laplacian::from_graph(&gen::path(3));
        solve(&l, &[1.0, 0.0, 0.0], 1e-10, 10);
    }
}
