//! Sparsification via spanners — Algorithms 5/6 and Theorem 21.
//!
//! [`SparsifierParams`] fixes the knobs of the pipeline (`λ = 2^k`, `eps`,
//! repetition counts). [`theorem21_sample`] is the *idealized* sampler the
//! paper's analysis reduces to: given sampling parameters `q(e)`, take
//! `Z` independent rounds, keep each edge with probability `q(e)` per round
//! at weight `1/q(e)`, and average. Lemma 22 shows the spanner-based
//! sampler (implemented in [`crate::pipeline`]) matches this ideal up to
//! the `Ω(R)`-coverage corrections; experiments compare all three
//! (ideal / streaming / SS08).

use crate::estimate::EstimateParams;
use crate::laplacian::Laplacian;
use dsg_graph::{Graph, WeightedGraph};
use dsg_hash::{derive_seed, SplitMix64};
use std::collections::HashMap;

/// Parameters of the two-pass streaming sparsifier (Corollary 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsifierParams {
    /// Spanner hierarchy depth; the oracle stretch is `λ = 2^k`. The paper
    /// sets `k = sqrt(log n)` for the `n^{1+o(1)}` headline.
    pub k: usize,
    /// Target spectral precision.
    pub eps: f64,
    /// The agreement slack `δ` of `ESTIMATE`.
    pub delta: f64,
    /// Scale factor on the paper's `Z = Θ(λ^2 log n / ((1-δ) eps^3))`
    /// sampling rounds (the constants are far beyond laptop scale; the
    /// experiments sweep this factor and report achieved `eps`).
    pub z_factor: f64,
    /// Scale factor on `J = Θ(log n / δ^2)` estimator repetitions.
    pub j_factor: f64,
    /// Root seed.
    pub seed: u64,
}

impl SparsifierParams {
    /// Creates parameters with laptop-calibrated defaults.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `eps` is not in `(0, 1)`.
    pub fn new(k: usize, eps: f64, seed: u64) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
        Self {
            k,
            eps,
            delta: 0.25,
            z_factor: 0.02,
            j_factor: 0.5,
            seed,
        }
    }

    /// The paper's choice `k = ceil(sqrt(log2 n))` (Section 6.3).
    pub fn paper_k(n: usize) -> usize {
        ((n.max(2) as f64).log2().sqrt().ceil() as usize).max(1)
    }

    /// The oracle stretch `λ = 2^k`.
    pub fn lambda(&self) -> u64 {
        1 << self.k
    }

    /// Number of sampling rounds `Z` for an `n`-vertex graph.
    pub fn z_rounds(&self, n: usize) -> usize {
        let lambda = self.lambda() as f64;
        let logn = (n.max(2) as f64).log2();
        let z = self.z_factor * lambda * lambda * logn / ((1.0 - self.delta) * self.eps.powi(3));
        (z.ceil() as usize).clamp(2, 512)
    }

    /// Number of `E_j` sampling levels `H = log2 n^2`.
    pub fn h_levels(&self, n: usize) -> usize {
        (2.0 * (n.max(2) as f64).log2()).ceil() as usize
    }

    /// The `ESTIMATE` parameters for an `n`-vertex graph.
    pub fn estimate_params(&self, n: usize) -> EstimateParams {
        let logn = (n.max(2) as f64).log2();
        EstimateParams {
            j_reps: ((self.j_factor * logn / (self.delta * self.delta)).ceil() as usize)
                .clamp(3, 64),
            t_levels: self.h_levels(n),
            lambda: self.lambda(),
            delta: self.delta,
        }
    }
}

/// The idealized Theorem-21 sampler: `Z` independent rounds of keeping each
/// edge `e` with probability `q(e)` at weight `1/q(e)`, averaged.
///
/// `q` maps each edge of `g` to a sampling parameter in `(0, 1]`.
///
/// # Panics
///
/// Panics if some `q(e)` is outside `(0, 1]` or `z == 0`.
pub fn theorem21_sample(
    g: &Graph,
    q: &HashMap<dsg_graph::Edge, f64>,
    z: usize,
    seed: u64,
) -> WeightedGraph {
    assert!(z > 0, "need at least one round");
    let mut weights: HashMap<dsg_graph::Edge, f64> = HashMap::new();
    for (s, e) in (0..z).flat_map(|s| g.edges().iter().map(move |e| (s, e))) {
        let qe = *q.get(e).unwrap_or(&1.0);
        assert!(qe > 0.0 && qe <= 1.0, "q({e}) = {qe} outside (0, 1]");
        let mut rng = SplitMix64::new(derive_seed(seed, &[s as u64, e.index(g.num_vertices())]));
        if rng.next_f64() < qe {
            *weights.entry(*e).or_insert(0.0) += 1.0 / (qe * z as f64);
        }
    }
    WeightedGraph::from_edges(
        g.num_vertices(),
        weights.into_iter().filter(|&(_, w)| w > 0.0),
    )
}

/// Unit-weight view of an unweighted graph (for spectral comparison).
pub fn unit_weighted(g: &Graph) -> WeightedGraph {
    WeightedGraph::from_edges(g.num_vertices(), g.edges().iter().map(|&e| (e, 1.0)))
}

/// Measured quality of a sparsifier against its source.
#[derive(Debug, Clone)]
pub struct SparsifierQuality {
    /// Exact spectral epsilon (dense eigensolve).
    pub epsilon: f64,
    /// Edge count of the sparsifier.
    pub edges: usize,
    /// Edge count of the source graph.
    pub source_edges: usize,
}

/// Computes the exact quality of `h` as a sparsifier of (unweighted,
/// connected) `g`.
pub fn measure_quality(g: &Graph, h: &WeightedGraph) -> SparsifierQuality {
    let lg = Laplacian::from_graph(g);
    let lh = Laplacian::from_weighted(h);
    SparsifierQuality {
        epsilon: crate::spectral::spectral_epsilon(&lg, &lh),
        edges: h.num_edges(),
        source_edges: g.num_edges(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resistance;
    use dsg_graph::gen;

    #[test]
    fn params_scale_sanely() {
        let p = SparsifierParams::new(2, 0.5, 1);
        assert_eq!(p.lambda(), 4);
        assert!(p.z_rounds(100) >= 2);
        assert!(p.h_levels(64) == 12);
        let ep = p.estimate_params(64);
        assert_eq!(ep.t_levels, 12);
        assert!(ep.j_reps >= 3);
    }

    #[test]
    fn paper_k_grows_slowly() {
        assert_eq!(SparsifierParams::paper_k(2), 1);
        assert!(SparsifierParams::paper_k(1 << 16) <= 4);
        assert!(SparsifierParams::paper_k(1 << 16) >= 3);
    }

    #[test]
    fn theorem21_with_resistance_q_is_a_sparsifier() {
        // Feed the ideal sampler the true R_e-based parameters: the result
        // must be a decent spectral sparsifier (Theorem 21 / SS08).
        let g = gen::complete(30);
        let l = Laplacian::from_graph(&g);
        let logn = 30f64.log2();
        let q: HashMap<_, _> = resistance::all_edge_resistances(&l)
            .into_iter()
            .map(|(e, w, r)| (e, (w * r * logn / 2.0).clamp(1e-3, 1.0)))
            .collect();
        let h = theorem21_sample(&g, &q, 24, 7);
        let quality = measure_quality(&g, &h);
        assert!(quality.epsilon < 0.8, "eps={}", quality.epsilon);
        assert!(quality.edges <= quality.source_edges);
    }

    #[test]
    fn theorem21_unbiased_total_weight() {
        let g = gen::complete(20);
        let q: HashMap<_, _> = g.edges().iter().map(|&e| (e, 0.5)).collect();
        let h = theorem21_sample(&g, &q, 64, 8);
        let ratio = h.total_weight() / g.num_edges() as f64;
        assert!((0.85..1.15).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn bad_q_panics() {
        let g = gen::path(3);
        let q: HashMap<_, _> = g.edges().iter().map(|&e| (e, 0.0)).collect();
        theorem21_sample(&g, &q, 1, 1);
    }
}
