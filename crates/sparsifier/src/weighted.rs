//! Weighted spectral sparsification via weight classes.
//!
//! Corollary 2 charges "an extra factor of `γ^{-1} log(w_max/w_min)`" for
//! weighted graphs: "we round all edge weights to the nearest power of
//! `(1+γ)` ... Thus, it is sufficient to construct sparsifiers of
//! unweighted graphs" (Section 6). This module is that reduction: one
//! unweighted [`TwoPassSparsifier`] per geometric weight class, each run
//! over the class-filtered stream across the same two passes; the outputs
//! are scaled by their class weight and unioned.
//!
//! Spectrally: if `H_c` is a `(1±eps)`-sparsifier of the class-`c`
//! subgraph and weights are rounded within `(1+γ)`, the union is a
//! `(1 ± eps)(1 + γ)`-approximation of `G` — rescaling absorbs the
//! constant, as the paper notes.

use crate::kp12::SparsifierParams;
use crate::pipeline::{PipelineStats, TwoPassSparsifier};
use dsg_graph::stream::StreamUpdate;
use dsg_graph::{StreamAlgorithm, WeightedGraph};
use dsg_util::SpaceUsage;
use std::collections::HashMap;

/// Output of the weighted sparsifier.
#[derive(Debug, Clone)]
pub struct WeightedPipelineOutput {
    /// The weighted sparsifier (class-scaled union).
    pub sparsifier: WeightedGraph,
    /// Per-class statistics `(class, stats)`.
    pub per_class: Vec<(i32, PipelineStats)>,
}

/// The weighted two-pass streaming sparsifier.
///
/// # Examples
///
/// ```no_run
/// use dsg_graph::{gen, pass, GraphStream};
/// use dsg_sparsifier::{weighted::WeightedTwoPassSparsifier, SparsifierParams};
///
/// let g = gen::with_random_weights(&gen::complete(20), 1.0, 4.0, 1);
/// let stream = GraphStream::weighted_with_churn(&g, 0.5, 2);
/// let mut alg = WeightedTwoPassSparsifier::new(20, 0.5, SparsifierParams::new(2, 0.5, 3));
/// pass::run(&mut alg, &stream);
/// let out = alg.into_output().unwrap();
/// println!("{} edges", out.sparsifier.num_edges());
/// ```
#[derive(Debug)]
pub struct WeightedTwoPassSparsifier {
    n: usize,
    gamma: f64,
    params: SparsifierParams,
    classes: HashMap<i32, TwoPassSparsifier>,
    current_pass: usize,
    finished: bool,
}

impl WeightedTwoPassSparsifier {
    /// Creates the algorithm with rounding parameter `gamma`.
    ///
    /// # Panics
    ///
    /// Panics if `gamma <= 0` or `n < 2`.
    pub fn new(n: usize, gamma: f64, params: SparsifierParams) -> Self {
        assert!(gamma > 0.0, "gamma must be positive");
        assert!(n >= 2, "need at least two vertices");
        Self {
            n,
            gamma,
            params,
            classes: HashMap::new(),
            current_pass: 0,
            finished: false,
        }
    }

    /// The weight class of `w`: `floor(log_{1+γ} w)`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not positive and finite.
    pub fn weight_class(&self, w: f64) -> i32 {
        assert!(w.is_finite() && w > 0.0, "invalid weight {w}");
        (w.ln() / (1.0 + self.gamma).ln()).floor() as i32
    }

    /// The representative (upper) weight of class `c`.
    pub fn class_weight(&self, c: i32) -> f64 {
        (1.0 + self.gamma).powi(c + 1)
    }

    /// Consumes the algorithm, returning the output after both passes.
    pub fn into_output(mut self) -> Option<WeightedPipelineOutput> {
        if !self.finished {
            return None;
        }
        let mut classes: Vec<(i32, TwoPassSparsifier)> = self.classes.drain().collect();
        classes.sort_by_key(|(c, _)| *c);
        let mut edges: HashMap<dsg_graph::Edge, f64> = HashMap::new();
        let mut per_class = Vec::new();
        for (c, alg) in classes {
            let out = alg.into_output()?;
            let scale = self.class_weight(c);
            for (e, w) in out.sparsifier.edges() {
                *edges.entry(*e).or_insert(0.0) += w * scale;
            }
            per_class.push((c, out.stats));
        }
        Some(WeightedPipelineOutput {
            sparsifier: WeightedGraph::from_edges(
                self.n,
                edges.into_iter().filter(|&(_, w)| w > 0.0),
            ),
            per_class,
        })
    }
}

impl StreamAlgorithm for WeightedTwoPassSparsifier {
    fn num_passes(&self) -> usize {
        2
    }

    fn begin_pass(&mut self, pass: usize) {
        self.current_pass = pass;
        for alg in self.classes.values_mut() {
            alg.begin_pass(pass);
        }
    }

    fn process(&mut self, update: &StreamUpdate) {
        let class = self.weight_class(update.weight);
        if self.current_pass == 0 {
            if !self.classes.contains_key(&class) {
                let mut params = self.params;
                params.seed = params
                    .seed
                    .wrapping_add(0x517C_C1B7u64.wrapping_mul(class as i64 as u64));
                let mut alg = TwoPassSparsifier::new(self.n, params);
                alg.begin_pass(0);
                self.classes.insert(class, alg);
            }
        } else if !self.classes.contains_key(&class) {
            panic!(
                "weight class {class} first appeared in pass {}",
                self.current_pass
            );
        }
        let unweighted = StreamUpdate {
            edge: update.edge,
            delta: update.delta,
            weight: 1.0,
        };
        self.classes
            .get_mut(&class)
            .expect("class exists")
            .process(&unweighted);
    }

    fn end_pass(&mut self, pass: usize) {
        for alg in self.classes.values_mut() {
            alg.end_pass(pass);
        }
        if pass == 1 {
            self.finished = true;
        }
    }
}

impl SpaceUsage for WeightedTwoPassSparsifier {
    fn space_bytes(&self) -> usize {
        self.classes.values().map(SpaceUsage::space_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laplacian::Laplacian;
    use crate::spectral;
    use dsg_graph::{gen, GraphStream};

    fn small_params(seed: u64) -> SparsifierParams {
        let mut p = SparsifierParams::new(2, 0.5, seed);
        p.z_factor = 0.05;
        p.j_factor = 0.4;
        p
    }

    fn run(g: &WeightedGraph, gamma: f64, seed: u64) -> WeightedPipelineOutput {
        let stream = GraphStream::weighted_with_churn(g, 0.5, seed ^ 0x33);
        let mut alg = WeightedTwoPassSparsifier::new(g.num_vertices(), gamma, small_params(seed));
        dsg_graph::pass::run(&mut alg, &stream);
        alg.into_output().expect("finished")
    }

    #[test]
    fn produces_spectrally_bounded_output() {
        let g = gen::with_random_weights(&gen::complete(18), 1.0, 4.0, 1);
        let out = run(&g, 0.5, 2);
        assert!(out.sparsifier.num_edges() > 0);
        let eps = spectral::spectral_epsilon(
            &Laplacian::from_weighted(&g),
            &Laplacian::from_weighted(&out.sparsifier),
        );
        assert!(eps < 1.0, "eps={eps} at disconnection level");
    }

    #[test]
    fn classes_partition_the_stream() {
        let g = gen::with_random_weights(&gen::erdos_renyi(16, 0.5, 3), 1.0, 64.0, 4);
        let out = run(&g, 0.5, 5);
        assert!(out.per_class.len() >= 2, "expected multiple classes");
        // Edges only come from the input graph.
        for (e, _) in out.sparsifier.edges() {
            assert!(g.weight(e.u(), e.v()).is_some(), "phantom edge {e}");
        }
    }

    #[test]
    fn single_class_for_uniform_weights() {
        let g = gen::with_random_weights(&gen::complete(12), 2.0, 2.0, 6);
        let out = run(&g, 0.5, 7);
        assert_eq!(out.per_class.len(), 1);
    }

    #[test]
    #[should_panic(expected = "gamma must be positive")]
    fn zero_gamma_panics() {
        WeightedTwoPassSparsifier::new(4, 0.0, SparsifierParams::new(2, 0.5, 1));
    }
}
