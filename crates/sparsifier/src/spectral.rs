//! Measuring spectral similarity between graphs.
//!
//! The object the paper's Corollary 2 promises: `H` with
//! `(1-eps) G ⪯ H ⪯ (1+eps) G` (Definition 6's ordering). This module
//! measures the smallest such `eps`:
//!
//! * [`spectral_epsilon`] — **exact**, by reducing the generalized
//!   eigenproblem `L_H v = λ L_G v` (restricted to the space where `L_G` is
//!   positive definite) to a symmetric standard problem via Cholesky;
//!   `O(n^3)`, for experiment-scale graphs;
//! * [`sampled_epsilon_lower_bound`] — a quadratic-form probe over random
//!   and structured test vectors; cheap, never exceeds the true `eps`.

use crate::eigen::{cholesky, symmetric_eigen};
use crate::laplacian::Laplacian;
use dsg_hash::SplitMix64;

/// The exact spectral approximation constant: the smallest `eps` with
/// `(1-eps) x^T L_G x ≤ x^T L_H x ≤ (1+eps) x^T L_G x` for all `x`.
///
/// Requires `g` to be **connected** (so `L_G` is positive definite on the
/// complement of the all-ones vector). Returns `f64::INFINITY` if `H` has
/// mass where `G` has none (or vice versa, e.g. `H` disconnects a component
/// of `G` — then `λ_min = 0` and `eps = 1`... values above 1 mean `H`
/// overshoots by more than 2x).
///
/// # Panics
///
/// Panics if the vertex counts differ or `g` is disconnected.
///
/// # Examples
///
/// ```
/// use dsg_graph::gen;
/// use dsg_sparsifier::{laplacian::Laplacian, spectral};
///
/// let g = Laplacian::from_graph(&gen::complete(10));
/// let eps = spectral::spectral_epsilon(&g, &g);
/// assert!(eps < 1e-9); // identical graphs: eps = 0
/// ```
pub fn spectral_epsilon(g: &Laplacian, h: &Laplacian) -> f64 {
    let n = g.num_vertices();
    assert_eq!(n, h.num_vertices(), "vertex count mismatch");
    assert!(n >= 2, "need at least two vertices");
    // Orthonormal basis Q of the complement of span(1): n-1 columns.
    // Use the Helmert-style basis: column k (1-indexed) has 1/sqrt(k(k+1))
    // in the first k coordinates and -k/sqrt(k(k+1)) at coordinate k.
    let basis: Vec<Vec<f64>> = (1..n)
        .map(|k| {
            let norm = 1.0 / ((k * (k + 1)) as f64).sqrt();
            let mut col = vec![0.0; n];
            for item in col.iter_mut().take(k) {
                *item = norm;
            }
            col[k] = -(k as f64) * norm;
            col
        })
        .collect();
    // Project both Laplacians: A = Q^T L_G Q, B = Q^T L_H Q.
    let project = |l: &Laplacian| -> Vec<Vec<f64>> {
        // L Q computed column by column.
        let lq: Vec<Vec<f64>> = basis.iter().map(|col| l.matvec(col)).collect();
        (0..n - 1)
            .map(|i| (0..n - 1).map(|j| dot(&basis[i], &lq[j])).collect())
            .collect()
    };
    let a = project(g);
    let b = project(h);
    let r = cholesky(&a).expect("input graph must be connected (L_G positive definite on 1^⊥)");
    // M = R^{-T} B R^{-1}; eigenvalues of M are generalized eigenvalues of
    // (B, A). Form M column by column: M e_i = R^{-T} B R^{-1} e_i.
    let m_cols: Vec<Vec<f64>> = (0..n - 1)
        .map(|i| {
            let mut e = vec![0.0; n - 1];
            e[i] = 1.0;
            // x = R^{-1} e  ⟺  R x = e (back substitution).
            let x = solve_upper(&r, &e);
            // y = B x.
            let y: Vec<f64> = (0..n - 1).map(|row| dot(&b[row], &x)).collect();
            // z = R^{-T} y  ⟺  R^T z = y (forward substitution).
            solve_lower_transpose(&r, &y)
        })
        .collect();
    let m: Vec<Vec<f64>> = (0..n - 1)
        .map(|i| {
            (0..n - 1)
                .map(|j| (m_cols[j][i] + m_cols[i][j]) / 2.0)
                .collect()
        })
        .collect();
    let (vals, _) = symmetric_eigen(&m, 1e-11, 200);
    let lo = vals.first().copied().unwrap_or(1.0);
    let hi = vals.last().copied().unwrap_or(1.0);
    (1.0 - lo).max(hi - 1.0).max(0.0)
}

/// Solves `R x = b` for upper-triangular `R`.
fn solve_upper(r: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
    let n = r.len();
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = b[i];
        for k in (i + 1)..n {
            sum -= r[i][k] * x[k];
        }
        x[i] = sum / r[i][i];
    }
    x
}

/// Solves `R^T z = y` for upper-triangular `R`.
fn solve_lower_transpose(r: &[Vec<f64>], y: &[f64]) -> Vec<f64> {
    let n = r.len();
    let mut z = vec![0.0; n];
    for i in 0..n {
        let mut sum = y[i];
        for k in 0..i {
            sum -= r[k][i] * z[k];
        }
        z[i] = sum / r[i][i];
    }
    z
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// A sampled lower bound on the spectral epsilon: the worst quadratic-form
/// ratio deviation over random Gaussian-ish vectors, random cut indicators,
/// and coordinate differences.
///
/// # Panics
///
/// Panics if the vertex counts differ.
pub fn sampled_epsilon_lower_bound(g: &Laplacian, h: &Laplacian, samples: usize, seed: u64) -> f64 {
    let n = g.num_vertices();
    assert_eq!(n, h.num_vertices(), "vertex count mismatch");
    let mut rng = SplitMix64::new(seed);
    let mut worst: f64 = 0.0;
    let mut probe = |x: &[f64]| {
        let qg = g.quadratic_form(x);
        let qh = h.quadratic_form(x);
        if qg > 1e-12 {
            worst = worst.max((qh / qg - 1.0).abs());
        } else if qh > 1e-9 {
            worst = f64::INFINITY;
        }
    };
    for s in 0..samples {
        match s % 3 {
            0 => {
                // Random centred vector.
                let x: Vec<f64> = (0..n).map(|_| rng.next_f64() - 0.5).collect();
                probe(&x);
            }
            1 => {
                // Random cut indicator.
                let x: Vec<f64> = (0..n)
                    .map(|_| if rng.next_u64() & 1 == 1 { 1.0 } else { 0.0 })
                    .collect();
                probe(&x);
            }
            _ => {
                // Single-coordinate indicator (degree probe).
                let mut x = vec![0.0; n];
                x[rng.next_below(n as u64) as usize] = 1.0;
                probe(&x);
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsg_graph::{gen, Edge, WeightedGraph};

    #[test]
    fn identical_graphs_zero_eps() {
        let l = Laplacian::from_graph(&gen::erdos_renyi(20, 0.4, 1));
        assert!(spectral_epsilon(&l, &l) < 1e-8);
    }

    #[test]
    fn uniform_scaling_gives_exact_eps() {
        let g = gen::complete(12);
        let lg = Laplacian::from_graph(&g);
        let scaled = WeightedGraph::from_edges(12, g.edges().iter().map(|&e| (e, 1.3)));
        let lh = Laplacian::from_weighted(&scaled);
        let eps = spectral_epsilon(&lg, &lh);
        assert!((eps - 0.3).abs() < 1e-8, "eps={eps}");
    }

    #[test]
    fn dropping_an_edge_of_a_cycle() {
        // Cycle C_n minus one edge: the quadratic form on the "linear" test
        // vector shrinks; eps is 1 - λ_min which is substantial.
        let g = gen::cycle(8);
        let lg = Laplacian::from_graph(&g);
        let h = g.minus(&[Edge::new(0, 7)].into_iter().collect());
        let lh = Laplacian::from_graph(&h);
        let eps = spectral_epsilon(&lg, &lh);
        assert!(eps > 0.5, "eps={eps}");
        assert!(eps <= 1.0 + 1e-9);
    }

    #[test]
    fn sampled_bound_never_exceeds_exact() {
        let g = gen::erdos_renyi(16, 0.5, 2);
        let lg = Laplacian::from_graph(&g);
        // Perturb: drop a few edges.
        let kill: std::collections::HashSet<Edge> = g.edges().iter().take(3).copied().collect();
        let lh = Laplacian::from_graph(&g.minus(&kill));
        let exact = spectral_epsilon(&lg, &lh);
        let sampled = sampled_epsilon_lower_bound(&lg, &lh, 300, 3);
        assert!(
            sampled <= exact + 1e-8,
            "sampled {sampled} exceeds exact {exact}"
        );
        assert!(sampled > 0.0);
    }

    #[test]
    fn disconnection_detected() {
        let g = gen::path(6);
        let lg = Laplacian::from_graph(&g);
        let h = g.minus(&[Edge::new(2, 3)].into_iter().collect());
        let lh = Laplacian::from_graph(&h);
        // λ_min = 0: eps = 1.
        let eps = spectral_epsilon(&lg, &lh);
        assert!((eps - 1.0).abs() < 1e-8, "eps={eps}");
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_base_graph_panics() {
        let g = dsg_graph::Graph::from_edges(4, [Edge::new(0, 1)]);
        let l = Laplacian::from_graph(&g);
        spectral_epsilon(&l, &l);
    }
}
