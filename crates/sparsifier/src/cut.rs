//! Cut-value preservation checks.
//!
//! "Spectral sparsifiers approximately preserve the value of all cuts in a
//! graph, by restricting `x` to binary vectors" (Section 1). These helpers
//! measure the worst observed cut deviation — a weaker but more
//! interpretable companion to the exact spectral epsilon.

use crate::laplacian::Laplacian;
use dsg_hash::SplitMix64;

/// Maximum relative cut deviation `|cut_H(S)/cut_G(S) - 1|` over `samples`
/// random bipartitions plus all singleton cuts.
///
/// Returns `f64::INFINITY` if `h` assigns zero weight to a cut that `g`
/// crosses.
///
/// # Panics
///
/// Panics if vertex counts differ.
pub fn max_cut_deviation(g: &Laplacian, h: &Laplacian, samples: usize, seed: u64) -> f64 {
    let n = g.num_vertices();
    assert_eq!(n, h.num_vertices(), "vertex count mismatch");
    let mut rng = SplitMix64::new(seed);
    let mut worst: f64 = 0.0;
    let mut probe = |s: &[bool]| {
        let cg = g.cut_value(s);
        let ch = h.cut_value(s);
        if cg > 1e-12 {
            worst = worst.max((ch / cg - 1.0).abs());
        } else if ch > 1e-9 {
            worst = f64::INFINITY;
        }
    };
    // Singleton cuts: degree preservation.
    for v in 0..n {
        let mut s = vec![false; n];
        s[v] = true;
        probe(&s);
    }
    // Random bipartitions.
    for _ in 0..samples {
        let s: Vec<bool> = (0..n).map(|_| rng.next_u64() & 1 == 1).collect();
        probe(&s);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsg_graph::{gen, WeightedGraph};

    #[test]
    fn identical_graphs_zero_deviation() {
        let l = Laplacian::from_graph(&gen::erdos_renyi(20, 0.4, 1));
        assert_eq!(max_cut_deviation(&l, &l, 100, 2), 0.0);
    }

    #[test]
    fn scaled_graph_exact_deviation() {
        let g = gen::complete(10);
        let lg = Laplacian::from_graph(&g);
        let scaled = WeightedGraph::from_edges(10, g.edges().iter().map(|&e| (e, 0.8)));
        let lh = Laplacian::from_weighted(&scaled);
        let dev = max_cut_deviation(&lg, &lh, 50, 3);
        assert!((dev - 0.2).abs() < 1e-12, "dev={dev}");
    }

    #[test]
    fn cut_deviation_bounded_by_spectral_eps() {
        // Cuts are quadratic forms of indicators, so cut deviation ≤
        // spectral epsilon.
        use crate::spectral::spectral_epsilon;
        let g = gen::erdos_renyi(14, 0.6, 4);
        let lg = Laplacian::from_graph(&g);
        let kill: std::collections::HashSet<dsg_graph::Edge> =
            g.edges().iter().take(2).copied().collect();
        let lh = Laplacian::from_graph(&g.minus(&kill));
        let cut_dev = max_cut_deviation(&lg, &lh, 300, 5);
        let eps = spectral_epsilon(&lg, &lh);
        assert!(cut_dev <= eps + 1e-8, "cut {cut_dev} > spectral {eps}");
    }

    #[test]
    fn dropped_cut_deviates_fully() {
        // h assigns weight 0 to a cut g crosses: |0/1 - 1| = 1.
        let g = gen::path(4);
        let lg = Laplacian::from_graph(&g);
        let h = g.minus(&[dsg_graph::Edge::new(1, 2)].into_iter().collect());
        let lh = Laplacian::from_graph(&h);
        assert_eq!(max_cut_deviation(&lg, &lh, 50, 6), 1.0);
    }

    #[test]
    fn phantom_weight_is_infinite() {
        // h has weight where g has none: the ratio is unbounded.
        let g = gen::path(3); // edges (0,1), (1,2)
        let lg = Laplacian::from_graph(&g);
        let h = WeightedGraph::from_edges(
            3,
            [
                (dsg_graph::Edge::new(0, 1), 1.0),
                (dsg_graph::Edge::new(1, 2), 1.0),
                (dsg_graph::Edge::new(0, 2), 1.0),
            ],
        );
        // Compare against a graph that is g with vertex 2 isolated: the cut
        // ({2}, rest) has value 0 in that graph but h crosses it.
        let g_cut = g.minus(&[dsg_graph::Edge::new(1, 2)].into_iter().collect());
        let lg_cut = Laplacian::from_graph(&g_cut);
        let lh = Laplacian::from_weighted(&h);
        assert_eq!(max_cut_deviation(&lg_cut, &lh, 50, 7), f64::INFINITY);
        let _ = lg;
    }
}
