//! Dense symmetric eigensolver (cyclic Jacobi) and Cholesky factorization.
//!
//! Experiment-scale machinery: the *exact* spectral approximation constant
//! between two Laplacians is a generalized eigenvalue problem, which
//! [`crate::spectral::spectral_epsilon`] reduces to a symmetric standard
//! problem via Cholesky. Pure Rust, `O(n^3)` — meant for `n` up to a few
//! hundred, which is where the experiments verify exactness before scaling
//! up with sampled lower bounds.

/// Eigenvalues (ascending) and eigenvectors of a symmetric matrix, via
/// cyclic Jacobi rotations.
///
/// Returns `(eigenvalues, eigenvectors)` where `eigenvectors[k]` is the
/// unit eigenvector for `eigenvalues[k]`.
///
/// # Panics
///
/// Panics if `m` is not square or not (approximately) symmetric.
///
/// # Examples
///
/// ```
/// let m = vec![vec![2.0, 1.0], vec![1.0, 2.0]];
/// let (vals, _) = dsg_sparsifier::eigen::symmetric_eigen(&m, 1e-12, 100);
/// assert!((vals[0] - 1.0).abs() < 1e-9);
/// assert!((vals[1] - 3.0).abs() < 1e-9);
/// ```
pub fn symmetric_eigen(m: &[Vec<f64>], tol: f64, max_sweeps: usize) -> (Vec<f64>, Vec<Vec<f64>>) {
    let n = m.len();
    for row in m {
        assert_eq!(row.len(), n, "matrix must be square");
    }
    for (i, row) in m.iter().enumerate() {
        for (j, &val) in row.iter().enumerate().take(i) {
            assert!(
                (val - m[j][i]).abs() <= 1e-8 * (1.0 + val.abs()),
                "matrix must be symmetric at ({i},{j})"
            );
        }
    }
    let mut a: Vec<Vec<f64>> = m.to_vec();
    // v starts as identity; columns accumulate the rotations.
    let mut v = vec![vec![0.0; n]; n];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    for _sweep in 0..max_sweeps {
        let mut off = 0.0;
        for (i, row) in a.iter().enumerate() {
            for &x in &row[i + 1..] {
                off += x * x;
            }
        }
        if off.sqrt() <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                if a[p][q].abs() <= 1e-300 {
                    continue;
                }
                let theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Rotate columns p and q of `a`, then rows p and q, then
                // columns p and q of the eigenvector accumulator.
                for row in a.iter_mut() {
                    let (akp, akq) = (row[p], row[q]);
                    row[p] = c * akp - s * akq;
                    row[q] = s * akp + c * akq;
                }
                let (head, tail) = a.split_at_mut(q);
                let (row_p, row_q) = (&mut head[p], &mut tail[0]);
                for (apk, aqk) in row_p.iter_mut().zip(row_q.iter_mut()) {
                    let (x, y) = (*apk, *aqk);
                    *apk = c * x - s * y;
                    *aqk = s * x + c * y;
                }
                for row in v.iter_mut() {
                    let (vkp, vkq) = (row[p], row[q]);
                    row[p] = c * vkp - s * vkq;
                    row[q] = s * vkp + c * vkq;
                }
            }
        }
    }
    // Extract and sort.
    let mut pairs: Vec<(f64, Vec<f64>)> = (0..n)
        .map(|k| (a[k][k], (0..n).map(|i| v[i][k]).collect()))
        .collect();
    pairs.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("finite eigenvalues"));
    let vals = pairs.iter().map(|(l, _)| *l).collect();
    let vecs = pairs.into_iter().map(|(_, v)| v).collect();
    (vals, vecs)
}

/// Cholesky factorization `A = R^T R` of a symmetric positive-definite
/// matrix (upper-triangular `R`).
///
/// # Errors
///
/// Returns `None` if the matrix is not positive definite.
pub fn cholesky(a: &[Vec<f64>]) -> Option<Vec<Vec<f64>>> {
    let n = a.len();
    let mut r = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in i..n {
            let mut sum = a[i][j];
            for rk in &r[..i] {
                sum -= rk[i] * rk[j];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                r[i][i] = sum.sqrt();
            } else {
                r[i][j] = sum / r[i][i];
            }
        }
    }
    Some(r)
}

/// Solves `R^T y = b` then `R x = y` for upper-triangular `R` (i.e.
/// `A x = b` with `A = R^T R`).
pub fn cholesky_solve(r: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
    let n = r.len();
    // Forward: R^T y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= r[k][i] * y[k];
        }
        y[i] = sum / r[i][i];
    }
    // Backward: R x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in (i + 1)..n {
            sum -= r[i][k] * x[k];
        }
        x[i] = sum / r[i][i];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let m = vec![
            vec![3.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ];
        let (vals, _) = symmetric_eigen(&m, 1e-12, 50);
        assert!((vals[0] - 1.0).abs() < 1e-10);
        assert!((vals[1] - 2.0).abs() < 1e-10);
        assert!((vals[2] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn eigenvectors_satisfy_definition() {
        let m = vec![
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 2.0],
        ];
        let (vals, vecs) = symmetric_eigen(&m, 1e-13, 100);
        for (l, v) in vals.iter().zip(&vecs) {
            for i in 0..3 {
                let mv: f64 = (0..3).map(|j| m[i][j] * v[j]).sum();
                assert!((mv - l * v[i]).abs() < 1e-8, "λ={l}");
            }
        }
    }

    #[test]
    fn path_laplacian_spectrum() {
        // Path on 3 vertices: eigenvalues 0, 1, 3.
        let m = vec![
            vec![1.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 1.0],
        ];
        let (vals, _) = symmetric_eigen(&m, 1e-13, 100);
        assert!(vals[0].abs() < 1e-10);
        assert!((vals[1] - 1.0).abs() < 1e-10);
        assert!((vals[2] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn trace_preserved() {
        let m = vec![
            vec![5.0, 2.0, 1.0, 0.0],
            vec![2.0, 4.0, 0.5, 0.3],
            vec![1.0, 0.5, 3.0, 0.1],
            vec![0.0, 0.3, 0.1, 2.0],
        ];
        let (vals, _) = symmetric_eigen(&m, 1e-13, 100);
        let trace: f64 = (0..4).map(|i| m[i][i]).sum();
        assert!((vals.iter().sum::<f64>() - trace).abs() < 1e-9);
    }

    #[test]
    fn cholesky_roundtrip() {
        let a = vec![
            vec![4.0, 2.0, 0.6],
            vec![2.0, 5.0, 1.0],
            vec![0.6, 1.0, 3.0],
        ];
        let r = cholesky(&a).expect("SPD");
        // Check A = R^T R.
        for i in 0..3 {
            for j in 0..3 {
                let v: f64 = (0..3).map(|k| r[k][i] * r[k][j]).sum();
                assert!((v - a[i][j]).abs() < 1e-10);
            }
        }
        // And solve.
        let b = [1.0, -2.0, 0.5];
        let x = cholesky_solve(&r, &b);
        for i in 0..3 {
            let ax: f64 = (0..3).map(|j| a[i][j] * x[j]).sum();
            assert!((ax - b[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 1.0]]; // eigenvalues 3, -1
        assert!(cholesky(&a).is_none());
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_rejected() {
        let m = vec![vec![1.0, 2.0], vec![0.0, 1.0]];
        symmetric_eigen(&m, 1e-10, 10);
    }
}
