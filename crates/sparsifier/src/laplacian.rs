//! Graph Laplacians and quadratic forms.
//!
//! For a weighted graph `G = (V, E, w)`, `L_G(i,j) = -w(i,j)` off-diagonal
//! and `L_G(i,i) = Σ_j w(i,j)` (Section 2 of the paper). A weighted graph
//! `H` is a `(1±eps)`-spectral sparsifier of `G` when
//! `x^T L_H x = (1±eps) x^T L_G x` for all `x` — the definition this module
//! makes measurable.

use dsg_graph::{Edge, Graph, Vertex, WeightedGraph};

/// A sparse symmetric Laplacian.
///
/// # Examples
///
/// ```
/// use dsg_graph::{WeightedGraph, Edge};
/// use dsg_sparsifier::Laplacian;
///
/// let g = WeightedGraph::from_edges(3, [(Edge::new(0, 1), 2.0)]);
/// let l = Laplacian::from_weighted(&g);
/// assert_eq!(l.quadratic_form(&[1.0, 0.0, 0.0]), 2.0);
/// assert_eq!(l.quadratic_form(&[1.0, 1.0, 0.0]), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Laplacian {
    n: usize,
    /// `(u, v, w)` triples with `u < v`, `w > 0`.
    edges: Vec<(Vertex, Vertex, f64)>,
    degree: Vec<f64>,
}

impl Laplacian {
    /// Builds the Laplacian of a weighted graph.
    pub fn from_weighted(g: &WeightedGraph) -> Self {
        let n = g.num_vertices();
        let mut degree = vec![0.0; n];
        let mut edges = Vec::with_capacity(g.num_edges());
        for (e, w) in g.edges() {
            degree[e.u() as usize] += w;
            degree[e.v() as usize] += w;
            edges.push((e.u(), e.v(), *w));
        }
        Self { n, edges, degree }
    }

    /// Builds the Laplacian of an unweighted graph (unit weights).
    pub fn from_graph(g: &Graph) -> Self {
        Self::from_weighted(&WeightedGraph::from_edges(
            g.num_vertices(),
            g.edges().iter().map(|&e| (e, 1.0)),
        ))
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of weighted edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The weighted degree of `v`.
    pub fn degree(&self, v: Vertex) -> f64 {
        self.degree[v as usize]
    }

    /// The edge triples `(u, v, w)`.
    pub fn edge_triples(&self) -> &[(Vertex, Vertex, f64)] {
        &self.edges
    }

    /// Matrix–vector product `y = Lx`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "dimension mismatch");
        let mut y: Vec<f64> = (0..self.n).map(|i| self.degree[i] * x[i]).collect();
        for &(u, v, w) in &self.edges {
            y[u as usize] -= w * x[v as usize];
            y[v as usize] -= w * x[u as usize];
        }
        y
    }

    /// The quadratic form `x^T L x = Σ_e w_e (x_u - x_v)^2`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    pub fn quadratic_form(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n, "dimension mismatch");
        self.edges
            .iter()
            .map(|&(u, v, w)| {
                let d = x[u as usize] - x[v as usize];
                w * d * d
            })
            .sum()
    }

    /// The dense matrix (row-major), for the eigensolver.
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut m = vec![vec![0.0; self.n]; self.n];
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = self.degree[i];
        }
        for &(u, v, w) in &self.edges {
            m[u as usize][v as usize] -= w;
            m[v as usize][u as usize] -= w;
        }
        m
    }

    /// The cut value of the vertex set `s` (quadratic form of its
    /// indicator).
    pub fn cut_value(&self, s: &[bool]) -> f64 {
        assert_eq!(s.len(), self.n, "dimension mismatch");
        self.edges
            .iter()
            .filter(|&&(u, v, _)| s[u as usize] != s[v as usize])
            .map(|&(_, _, w)| w)
            .sum()
    }

    /// Total edge weight (half the trace).
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|&(_, _, w)| w).sum()
    }

    /// The edge list as unweighted edges.
    pub fn skeleton_edges(&self) -> Vec<Edge> {
        self.edges
            .iter()
            .map(|&(u, v, _)| Edge::new(u, v))
            .collect()
    }

    /// Applies a batch of rank-1 edge updates — `(edge, new_weight)` with
    /// `new_weight == 0.0` meaning removal — returning the Laplacian of
    /// the updated graph without rebuilding it from scratch: one
    /// merge-splice of the sorted update list into the sorted edge list,
    /// O(|edges| + |updates| log |updates|).
    ///
    /// **Bit-identity:** touched vertices' degrees are *re-accumulated in
    /// canonical edge order* rather than adjusted by `±w`, so the result
    /// is bit-for-bit the Laplacian [`from_weighted`] would build from
    /// the updated graph — floating-point summation order never drifts
    /// between the patched and rebuilt artifact. Untouched vertices keep
    /// their degree bits, which are already the canonical-order sum (the
    /// relative order of their incident weights is unchanged).
    ///
    /// [`from_weighted`]: Laplacian::from_weighted
    ///
    /// # Panics
    ///
    /// Panics if an update carries a negative weight.
    pub fn apply_edge_updates<I>(&self, updates: I) -> Self
    where
        I: IntoIterator<Item = (Edge, f64)>,
    {
        let mut ups: Vec<(Edge, f64)> = updates.into_iter().collect();
        ups.sort_unstable_by_key(|&(e, _)| e);
        debug_assert!(
            ups.windows(2).all(|w| w[0].0 < w[1].0),
            "at most one update per edge"
        );
        let mut touched = vec![false; self.n];
        let mut edges = Vec::with_capacity(self.edges.len() + ups.len());
        let insert =
            |edges: &mut Vec<(Vertex, Vertex, f64)>, touched: &mut Vec<bool>, e: Edge, w: f64| {
                assert!(w >= 0.0, "negative weight for {e}");
                touched[e.u() as usize] = true;
                touched[e.v() as usize] = true;
                if w > 0.0 {
                    edges.push((e.u(), e.v(), w));
                }
            };
        let mut i = 0;
        for &(u, v, w) in &self.edges {
            let here = Edge::new(u, v);
            while i < ups.len() && ups[i].0 < here {
                let (e, nw) = ups[i];
                i += 1;
                insert(&mut edges, &mut touched, e, nw);
            }
            if i < ups.len() && ups[i].0 == here {
                let (e, nw) = ups[i];
                i += 1;
                insert(&mut edges, &mut touched, e, nw);
            } else {
                edges.push((u, v, w));
            }
        }
        for &(e, nw) in &ups[i..] {
            insert(&mut edges, &mut touched, e, nw);
        }
        let mut degree = self.degree.clone();
        for (t, d) in degree.iter_mut().enumerate() {
            if touched[t] {
                *d = 0.0;
            }
        }
        for &(u, v, w) in &edges {
            if touched[u as usize] {
                degree[u as usize] += w;
            }
            if touched[v as usize] {
                degree[v as usize] += w;
            }
        }
        Self {
            n: self.n,
            edges,
            degree,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsg_graph::gen;

    fn path3() -> Laplacian {
        Laplacian::from_graph(&gen::path(3))
    }

    #[test]
    fn quadratic_form_matches_definition() {
        let l = path3();
        // x = [0, 1, 3]: (0-1)^2 + (1-3)^2 = 5.
        assert_eq!(l.quadratic_form(&[0.0, 1.0, 3.0]), 5.0);
    }

    #[test]
    fn constants_in_null_space() {
        let l = Laplacian::from_graph(&gen::erdos_renyi(20, 0.3, 1));
        let ones = vec![2.5; 20];
        assert_eq!(l.quadratic_form(&ones), 0.0);
        let y = l.matvec(&ones);
        assert!(y.iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn matvec_matches_dense() {
        let g = gen::with_random_weights(&gen::erdos_renyi(15, 0.4, 2), 0.5, 3.0, 3);
        let l = Laplacian::from_weighted(&g);
        let dense = l.to_dense();
        let x: Vec<f64> = (0..15).map(|i| (i as f64).sin()).collect();
        let y = l.matvec(&x);
        for i in 0..15 {
            let expect: f64 = (0..15).map(|j| dense[i][j] * x[j]).sum();
            assert!(
                (y[i] - expect).abs() < 1e-9,
                "row {i}: {} vs {expect}",
                y[i]
            );
        }
    }

    #[test]
    fn quadratic_form_equals_x_t_l_x() {
        let g = gen::with_random_weights(&gen::cycle(10), 1.0, 2.0, 4);
        let l = Laplacian::from_weighted(&g);
        let x: Vec<f64> = (0..10).map(|i| (i as f64 * 0.7).cos()).collect();
        let lx = l.matvec(&x);
        let xtlx: f64 = x.iter().zip(&lx).map(|(a, b)| a * b).sum();
        assert!((l.quadratic_form(&x) - xtlx).abs() < 1e-9);
    }

    #[test]
    fn cut_value_counts_crossing_weight() {
        let l = Laplacian::from_graph(&gen::complete(6));
        let s = [true, true, true, false, false, false];
        assert_eq!(l.cut_value(&s), 9.0);
        let quad = l.quadratic_form(
            &s.iter()
                .map(|&b| if b { 1.0 } else { 0.0 })
                .collect::<Vec<_>>(),
        );
        assert_eq!(quad, 9.0);
    }

    #[test]
    fn degrees_accumulate() {
        let g = WeightedGraph::from_edges(3, [(Edge::new(0, 1), 2.0), (Edge::new(0, 2), 3.0)]);
        let l = Laplacian::from_weighted(&g);
        assert_eq!(l.degree(0), 5.0);
        assert_eq!(l.degree(1), 2.0);
        assert_eq!(l.total_weight(), 5.0);
    }

    #[test]
    fn edge_updates_match_rebuild_bit_for_bit() {
        let g = gen::with_random_weights(&gen::erdos_renyi(25, 0.3, 7), 0.5, 3.0, 8);
        let l = Laplacian::from_weighted(&g);
        // Remove some edges, reweight others, insert fresh non-edges.
        let mut updates: Vec<(Edge, f64)> = Vec::new();
        let mut new_edges: Vec<(Edge, f64)> = g.edges().to_vec();
        for (i, &(e, w)) in g.edges().iter().enumerate() {
            if i % 5 == 0 {
                updates.push((e, 0.0));
                new_edges.retain(|&(ne, _)| ne != e);
            } else if i % 5 == 1 {
                updates.push((e, w * 1.5));
                new_edges.iter_mut().for_each(|p| {
                    if p.0 == e {
                        p.1 = w * 1.5;
                    }
                });
            }
        }
        let have: std::collections::HashSet<Edge> = g.edges().iter().map(|&(e, _)| e).collect();
        let mut added = 0;
        'hunt: for u in 0..25u32 {
            for v in (u + 1)..25 {
                if !have.contains(&Edge::new(u, v)) {
                    updates.push((Edge::new(u, v), 2.25));
                    new_edges.push((Edge::new(u, v), 2.25));
                    added += 1;
                    if added >= 4 {
                        break 'hunt;
                    }
                }
            }
        }
        let patched = l.apply_edge_updates(updates);
        let rebuilt = Laplacian::from_weighted(&WeightedGraph::from_edges(25, new_edges));
        assert_eq!(patched.edge_triples(), rebuilt.edge_triples());
        for v in 0..25u32 {
            assert_eq!(
                patched.degree(v).to_bits(),
                rebuilt.degree(v).to_bits(),
                "degree bits of {v}"
            );
        }
        // And the artifact contract surface: identical cut values.
        let s: Vec<bool> = (0..25).map(|i| i % 3 == 0).collect();
        assert_eq!(
            patched.cut_value(&s).to_bits(),
            rebuilt.cut_value(&s).to_bits()
        );
    }

    #[test]
    fn empty_update_batch_is_identity() {
        let g = gen::with_random_weights(&gen::cycle(10), 1.0, 2.0, 9);
        let l = Laplacian::from_weighted(&g);
        let same = l.apply_edge_updates(std::iter::empty());
        assert_eq!(l.edge_triples(), same.edge_triples());
        for v in 0..10u32 {
            assert_eq!(l.degree(v).to_bits(), same.degree(v).to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "negative weight")]
    fn negative_update_rejected() {
        path3().apply_edge_updates([(Edge::new(0, 1), -1.0)]);
    }
}
