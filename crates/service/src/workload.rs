//! Deterministic query-load generation for benchmarks and experiments.
//!
//! [`LoadGen`] maps an index `i` to a [`Query`] as a pure function of
//! `(seed, i)` — two runs of the same workload issue byte-identical query
//! sequences regardless of thread interleaving, which is what makes the
//! E19 mixed-workload numbers reproducible. Distance-type queries draw
//! their source from a small **hot set**, modelling the skewed access
//! patterns the oracle's per-source cache exists for.

use crate::query::Query;
use dsg_graph::Vertex;
use dsg_hash::SplitMix64;

/// Relative weights of the query types in a generated workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryMix {
    /// Weight of [`Query::Connectivity`].
    pub connectivity: u32,
    /// Weight of [`Query::SameComponent`].
    pub same_component: u32,
    /// Weight of [`Query::Distance`].
    pub distance: u32,
    /// Weight of [`Query::IsFar`].
    pub is_far: u32,
    /// Weight of [`Query::CutEstimate`].
    pub cut: u32,
    /// Weight of [`Query::Stats`].
    pub stats: u32,
}

impl QueryMix {
    /// A read-heavy serving mix: mostly membership and distance lookups,
    /// occasional cut estimates and stats probes.
    pub fn read_heavy() -> Self {
        Self {
            connectivity: 10,
            same_component: 40,
            distance: 35,
            is_far: 10,
            cut: 1,
            stats: 4,
        }
    }

    /// A membership-only mix (no artifact heavier than the forest), for
    /// isolating epoch/snapshot overhead from artifact build cost.
    pub fn membership_only() -> Self {
        Self {
            connectivity: 20,
            same_component: 80,
            distance: 0,
            is_far: 0,
            cut: 0,
            stats: 0,
        }
    }

    /// Summed in `u64`: six arbitrary `u32` weights can overflow `u32`.
    fn total(&self) -> u64 {
        [
            self.connectivity,
            self.same_component,
            self.distance,
            self.is_far,
            self.cut,
            self.stats,
        ]
        .iter()
        .map(|&w| w as u64)
        .sum()
    }
}

/// A deterministic `(seed, index) → Query` workload generator.
#[derive(Debug, Clone, Copy)]
pub struct LoadGen {
    n: usize,
    seed: u64,
    mix: QueryMix,
    hot_sources: usize,
}

impl LoadGen {
    /// A generator over graphs on `n` vertices. Distance-type queries
    /// draw sources from a default hot set of 4 vertices.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or the mix has zero total weight.
    pub fn new(n: usize, mix: QueryMix, seed: u64) -> Self {
        assert!(n >= 2, "need at least two vertices");
        assert!(mix.total() > 0, "query mix must have positive weight");
        Self {
            n,
            seed,
            mix,
            hot_sources: 4.min(n),
        }
    }

    /// Overrides the hot-set size for distance-type sources.
    ///
    /// # Panics
    ///
    /// Panics if `hot == 0`.
    pub fn hot_sources(mut self, hot: usize) -> Self {
        assert!(hot > 0, "need at least one hot source");
        self.hot_sources = hot.min(self.n);
        self
    }

    /// The `i`-th query of the workload — a pure function of
    /// `(seed, i)`.
    pub fn query(&self, i: u64) -> Query {
        let mut rng =
            SplitMix64::new(self.seed ^ (i.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let n = self.n as u64;
        let mut pick = rng.next_below(self.mix.total());
        let mut take = |w: u32| {
            if pick < w as u64 {
                true
            } else {
                pick -= w as u64;
                false
            }
        };
        if take(self.mix.connectivity) {
            return Query::Connectivity;
        }
        if take(self.mix.same_component) {
            let u = rng.next_below(n) as Vertex;
            let v = rng.next_below(n) as Vertex;
            return Query::SameComponent(u, v);
        }
        if take(self.mix.distance) {
            let u = rng.next_below(self.hot_sources as u64) as Vertex;
            let v = rng.next_below(n) as Vertex;
            return Query::Distance(u, v);
        }
        if take(self.mix.is_far) {
            let u = rng.next_below(self.hot_sources as u64) as Vertex;
            let v = rng.next_below(n) as Vertex;
            let threshold = 1 + rng.next_below(8) as u32;
            return Query::IsFar { u, v, threshold };
        }
        if take(self.mix.cut) {
            // A contiguous vertex range makes a deterministic, cheap side.
            let len = 1 + rng.next_below(n - 1);
            let start = rng.next_below(n - len + 1);
            return Query::CutEstimate((start..start + len).map(|v| v as Vertex).collect());
        }
        Query::Stats
    }

    /// The first `count` queries of the workload.
    pub fn queries(&self, count: u64) -> Vec<Query> {
        (0..count).map(|i| self.query(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        let a = LoadGen::new(50, QueryMix::read_heavy(), 7);
        let b = LoadGen::new(50, QueryMix::read_heavy(), 7);
        assert_eq!(a.queries(200), b.queries(200));
        let c = LoadGen::new(50, QueryMix::read_heavy(), 8);
        assert_ne!(a.queries(200), c.queries(200), "seed must matter");
    }

    #[test]
    fn mix_weights_are_respected() {
        let gen = LoadGen::new(30, QueryMix::membership_only(), 3);
        for q in gen.queries(300) {
            assert!(
                matches!(q, Query::Connectivity | Query::SameComponent(_, _)),
                "membership-only mix produced {q:?}"
            );
        }
    }

    #[test]
    fn distance_sources_stay_in_the_hot_set() {
        let mix = QueryMix {
            connectivity: 0,
            same_component: 0,
            distance: 1,
            is_far: 1,
            cut: 0,
            stats: 0,
        };
        let gen = LoadGen::new(100, mix, 5).hot_sources(3);
        for q in gen.queries(200) {
            match q {
                Query::Distance(u, _) | Query::IsFar { u, .. } => assert!(u < 3),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn generated_vertices_are_in_range() {
        let gen = LoadGen::new(9, QueryMix::read_heavy(), 11);
        for q in gen.queries(500) {
            match q {
                Query::SameComponent(u, v) | Query::Distance(u, v) => {
                    assert!(u < 9 && v < 9);
                }
                Query::IsFar { u, v, .. } => assert!(u < 9 && v < 9),
                Query::CutEstimate(side) => {
                    assert!(!side.is_empty());
                    assert!(side.iter().all(|&v| v < 9));
                }
                Query::Connectivity | Query::Stats => {}
            }
        }
    }
}
