//! A std-only admin scrape endpoint over plain [`TcpListener`].
//!
//! One background thread, no dependencies, five `GET` routes:
//!
//! | route | body |
//! |---|---|
//! | `/metrics` | the registry's Prometheus text exposition |
//! | `/healthz` | `ok` |
//! | `/epochz` | JSON array of per-tenant [`TenantEpochStats`] |
//! | `/tracez` | Chrome `trace_event` JSON: recorder dump + incidents |
//! | `/qualityz` | JSON quality-audit report: samples, error quantiles, violations |
//!
//! The server exists to be scraped — by Prometheus, by `curl`, by the CI
//! smoke test — not to be a web framework: it reads one request line,
//! answers with `Content-Length` + `Connection: close`, and hangs up.
//! Malformed requests get a 400, unknown paths a 404, and a read that
//! stalls past one second is dropped so a half-open client cannot wedge
//! the accept loop.

use crate::registry::GraphRegistry;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running admin endpoint; dropping (or [`shutdown`](AdminServer::shutdown))
/// stops the accept loop and joins its thread.
#[derive(Debug)]
pub struct AdminServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl AdminServer {
    /// Binds `addr` (use port 0 for an ephemeral port, then read
    /// [`local_addr`](AdminServer::local_addr)) and starts serving
    /// `registry`'s observability surfaces on a background thread.
    ///
    /// # Errors
    ///
    /// Whatever [`TcpListener::bind`] reports.
    pub fn bind(addr: &str, registry: Arc<GraphRegistry>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("dsg-admin".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        // One request per connection, served inline: the
                        // routes render in-memory state and an admin
                        // scraper arrives once a period, so a second
                        // thread would buy nothing.
                        let _ = serve_one(stream, &registry);
                    }
                }
            })
            .expect("failed to spawn admin server thread");
        Ok(Self {
            addr: local,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (the ephemeral port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the server thread.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        if let Some(thread) = self.thread.take() {
            self.stop.store(true, Ordering::Relaxed);
            // Wake the blocking accept with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = thread.join();
        }
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Reads one request, routes it, writes one response.
fn serve_one(mut stream: TcpStream, registry: &GraphRegistry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(1)))?;
    let path = match read_request_path(&mut stream) {
        Some(path) => path,
        None => return respond(&mut stream, 400, "text/plain", "bad request\n"),
    };
    match path.as_str() {
        "/metrics" => respond(
            &mut stream,
            200,
            "text/plain; version=0.0.4",
            &registry.render_prometheus(),
        ),
        "/healthz" => respond(&mut stream, 200, "text/plain", "ok\n"),
        "/epochz" => respond(
            &mut stream,
            200,
            "application/json",
            &render_epochz(registry),
        ),
        "/tracez" => respond(
            &mut stream,
            200,
            "application/json",
            &registry.tracer().render_chrome_trace(),
        ),
        "/qualityz" => respond(
            &mut stream,
            200,
            "application/json",
            &registry.auditor().map_or_else(
                || crate::audit::QUALITYZ_DISABLED.to_string(),
                |a| a.render_qualityz(),
            ),
        ),
        _ => respond(&mut stream, 404, "text/plain", "not found\n"),
    }
}

/// Parses `GET <path> HTTP/1.x` off the stream; returns `None` for
/// anything else (including non-GET methods and read timeouts).
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    // Requests of interest are a short request line + few headers; 4 KiB
    // is plenty and bounds a hostile sender.
    let mut buf = [0u8; 4096];
    let mut used = 0;
    loop {
        if used == buf.len() {
            return None;
        }
        let n = stream.read(&mut buf[used..]).ok()?;
        if n == 0 {
            return None;
        }
        used += n;
        if buf[..used].windows(2).any(|w| w == b"\r\n") {
            break;
        }
    }
    let line = std::str::from_utf8(&buf[..used]).ok()?.lines().next()?;
    let mut parts = line.split_whitespace();
    if parts.next()? != "GET" {
        return None;
    }
    let path = parts.next()?;
    // Ignore any query string: `/tracez?foo=1` routes as `/tracez`.
    Some(path.split('?').next().unwrap_or(path).to_string())
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        _ => "Not Found",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Renders the per-tenant epoch stats as a JSON array (names are
/// registry-validated identifiers, but escape anyway).
fn render_epochz(registry: &GraphRegistry) -> String {
    let mut out = String::from("[");
    for (i, t) in registry.epoch_stats().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"graph\":{},\"epoch\":{},\"total_updates\":{},\"net_edges\":{},\
             \"num_vertices\":{},\"load_balance\":{:.4},\
             \"incremental_builds\":{},\"full_builds\":{},\"last_patch_nanos\":{}}}",
            json_escape(&t.name),
            t.epoch,
            t.total_updates,
            t.net_edges,
            t.num_vertices,
            t.load_balance,
            t.incremental_builds,
            t.full_builds,
            t.last_patch_nanos
        ));
    }
    out.push_str("]\n");
    out
}

/// Renders `s` as a quoted JSON string literal (shared with the quality
/// auditor's `/qualityz` renderer).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code may unwrap freely

    use super::*;
    use crate::{FlightRecorder, GraphConfig, MetricRegistry};

    fn scrape(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let status: u16 = raw
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap();
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn serves_all_routes_and_shuts_down() {
        let registry = Arc::new(GraphRegistry::with_observability(
            Arc::new(MetricRegistry::new()),
            FlightRecorder::with_capacity(64),
        ));
        let g = registry.create("social", GraphConfig::new(8)).unwrap();
        g.insert(0, 1).unwrap();
        g.advance_epoch();
        let server = AdminServer::bind("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let addr = server.local_addr();

        let (status, body) = scrape(addr, "/healthz");
        assert_eq!((status, body.as_str()), (200, "ok\n"));
        let (status, body) = scrape(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("dsg_engine_batches_sent_total"));
        let (status, body) = scrape(addr, "/epochz");
        assert_eq!(status, 200);
        assert!(body.contains("\"graph\":\"social\"") && body.contains("\"epoch\":1"));
        assert!(
            body.contains("\"incremental_builds\":")
                && body.contains("\"full_builds\":")
                && body.contains("\"last_patch_nanos\":"),
            "epochz must expose the incremental-vs-full artifact tallies"
        );
        let (status, body) = scrape(addr, "/tracez?limit=10");
        assert_eq!(status, 200);
        assert!(body.contains("\"traceEvents\""));
        assert!(
            body.contains("epoch_publish"),
            "epoch advance must be traced"
        );
        let (status, _) = scrape(addr, "/nope");
        assert_eq!(status, 404);

        server.shutdown();
        assert!(
            TcpStream::connect(addr).is_err() || scrape_err(addr),
            "server must stop accepting after shutdown"
        );
    }

    /// After shutdown the listener is closed; a connect may still succeed
    /// transiently on some stacks, but a request must not be answered.
    fn scrape_err(addr: SocketAddr) -> bool {
        let Ok(mut stream) = TcpStream::connect(addr) else {
            return true;
        };
        if stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").is_err() {
            return true;
        }
        let mut out = String::new();
        stream
            .set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        stream.read_to_string(&mut out).unwrap_or(0) == 0
    }

    #[test]
    fn malformed_requests_get_400() {
        let registry = Arc::new(GraphRegistry::new());
        let server = AdminServer::bind("127.0.0.1:0", registry).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"POST /metrics HTTP/1.1\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 400"), "got: {raw}");
    }
}
