//! Immutable epoch snapshots and their lazily built derived artifacts.
//!
//! An [`EpochSnapshot`] is the unit of snapshot isolation: it owns the
//! merged coordinator sketch frozen at one stream position, plus the
//! **compacted net edge segment** sealed at the same position (a
//! [`NetMultiset`] — O(current edges), never O(stream length); see
//! [`crate::compact`]). Readers query it freely while ingest continues on
//! the engine; nothing in a snapshot is ever mutated after publication
//! except the one-shot initialization of its artifact cells.
//!
//! Artifacts are cached per epoch in [`OnceLock`]s:
//!
//! * **spanning forest + component labels** — decoded from the AGM sketch
//!   (Theorem 10); backs connectivity and same-component queries;
//! * **distance oracle** — the two-pass `2^k`-spanner (Theorem 1) rebuilt
//!   from the compacted segment, wrapped in the memoizing
//!   [`DistanceOracle`]; backs distance and far/near queries;
//! * **cut sparsifier** — the KP12 pipeline (Corollary 2) over the
//!   compacted segment, reduced to its [`Laplacian`]; backs cut-value
//!   estimates.
//!
//! Both multi-pass builders consume the **same** sealed segment (one
//! `Arc`, built once at epoch advance) through the multiset entry points
//! `run_two_pass_net` / `run_sparsifier_net` — no per-artifact log
//! materialization. Rebuilding from the net multiset is bit-identical to
//! replaying the raw log, because each pass's stream-facing state is
//! linear in the updates and everything between passes is a deterministic
//! function of that state; `crates/service/tests/net_props.rs` asserts
//! the order-insensitivity end to end.
//!
//! `OnceLock::get_or_init` guarantees each artifact is built exactly once
//! per epoch no matter how many readers race for it; advancing the epoch
//! publishes a new snapshot, which *is* the cache invalidation.

use crate::metrics::{ArtifactMetrics, ART_CUT, ART_FOREST, ART_ORACLE};
use crate::query::{GraphStats, Query, Response};
use crate::{GraphConfig, ServiceError};
use dsg_agm::forest::ForestResult;
use dsg_agm::AgmSketch;
use dsg_graph::components::UnionFind;
use dsg_graph::{NetMultiset, Vertex};
use dsg_spanner::oracle::DistanceOracle;
use dsg_spanner::twopass;
use dsg_sparsifier::pipeline::run_sparsifier_net;
use dsg_sparsifier::Laplacian;
use dsg_telemetry::{trace, EventKind};
use std::sync::{Arc, OnceLock};

/// The spanning forest of an epoch plus the component structure derived
/// from it, so membership queries are O(1) after one decode.
#[derive(Debug, Clone)]
pub struct ForestData {
    /// The decoded forest (Theorem 10).
    pub result: ForestResult,
    /// Component representative per vertex (two vertices are connected
    /// iff their labels are equal).
    pub labels: Vec<Vertex>,
    /// Number of connected components (isolated vertices included).
    pub num_components: usize,
}

/// The cut-query artifact: the KP12 sparsifier collapsed to a Laplacian.
#[derive(Debug, Clone)]
pub struct CutData {
    /// Laplacian of the weighted sparsifier.
    pub laplacian: Laplacian,
    /// Edges the sparsifier kept.
    pub sparsifier_edges: usize,
}

/// Which artifacts of a snapshot have been built so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArtifactStatus {
    /// Spanning forest + component labels.
    pub forest: bool,
    /// Spanner-backed distance oracle.
    pub oracle: bool,
    /// KP12 cut sparsifier.
    pub cut: bool,
}

/// An immutable view of one served graph frozen at an epoch boundary.
#[derive(Debug)]
pub struct EpochSnapshot {
    epoch: u64,
    config: GraphConfig,
    total_updates: u64,
    sketch: AgmSketch,
    /// The compacted net edge segment sealed at the epoch boundary — the
    /// single shared multi-pass input both the oracle and the cut
    /// builders rebuild from (O(current edges), order-free).
    net: Arc<NetMultiset>,
    forest: OnceLock<Arc<ForestData>>,
    oracle: OnceLock<Arc<DistanceOracle>>,
    cut: OnceLock<Arc<CutData>>,
    /// Telemetry handles for the artifact cells: build timings,
    /// build-once counters, cache hits, and the oracle's memo-cache
    /// counters. All-no-op for directly constructed snapshots.
    metrics: ArtifactMetrics,
}

impl EpochSnapshot {
    /// Builds a snapshot. Internal to the crate: snapshots are published
    /// by [`crate::ServedGraph::advance_epoch`].
    pub(crate) fn new(
        epoch: u64,
        config: GraphConfig,
        sketch: AgmSketch,
        net: Arc<NetMultiset>,
        total_updates: u64,
        metrics: ArtifactMetrics,
    ) -> Self {
        Self {
            epoch,
            config,
            total_updates,
            sketch,
            net,
            forest: OnceLock::new(),
            oracle: OnceLock::new(),
            cut: OnceLock::new(),
            metrics,
        }
    }

    /// The epoch number (0 is the empty snapshot a graph starts with).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The graph's configuration.
    pub fn config(&self) -> &GraphConfig {
        &self.config
    }

    /// Vertices of the served graph.
    pub fn num_vertices(&self) -> usize {
        self.config.n
    }

    /// Updates frozen into this snapshot.
    pub fn total_updates(&self) -> u64 {
        self.total_updates
    }

    /// The merged coordinator sketch frozen at the epoch boundary.
    pub fn sketch(&self) -> &AgmSketch {
        &self.sketch
    }

    /// Which artifacts have been built so far.
    pub fn artifact_status(&self) -> ArtifactStatus {
        ArtifactStatus {
            forest: self.forest.get().is_some(),
            oracle: self.oracle.get().is_some(),
            cut: self.cut.get().is_some(),
        }
    }

    /// The compacted net edge segment frozen into this snapshot — the
    /// shared multi-pass artifact input, and (for offline verification)
    /// an exact order-free summary of the frozen prefix.
    pub fn net_edges(&self) -> &Arc<NetMultiset> {
        &self.net
    }

    /// The forest artifact, built on first use (one sketch decode).
    pub fn forest(&self) -> Arc<ForestData> {
        if let Some(built) = self.forest.get() {
            self.metrics.cache_hits[ART_FOREST].inc();
            return Arc::clone(built);
        }
        Arc::clone(self.forest.get_or_init(|| {
            let _t = self.metrics.build_nanos[ART_FOREST].start_timer();
            self.metrics.builds[ART_FOREST].inc();
            self.trace_build(ART_FOREST);
            let result = self.sketch.spanning_forest();
            let mut uf = UnionFind::new(self.config.n);
            for e in &result.edges {
                uf.union(e.u(), e.v());
            }
            let labels: Vec<Vertex> = (0..self.config.n as Vertex).map(|v| uf.find(v)).collect();
            let num_components = uf.num_components();
            Arc::new(ForestData {
                result,
                labels,
                num_components,
            })
        }))
    }

    /// The distance-oracle artifact, built on first use by running the
    /// two-pass spanner over the shared compacted segment (deterministic
    /// in the graph seed, so every rebuild of the same epoch agrees, and
    /// bit-identical to a raw-log replay by pass linearity).
    pub fn oracle(&self) -> Arc<DistanceOracle> {
        if let Some(built) = self.oracle.get() {
            self.metrics.cache_hits[ART_ORACLE].inc();
            return Arc::clone(built);
        }
        Arc::clone(self.oracle.get_or_init(|| {
            let _t = self.metrics.build_nanos[ART_ORACLE].start_timer();
            self.metrics.builds[ART_ORACLE].inc();
            self.trace_build(ART_ORACLE);
            let out = twopass::run_two_pass_net(self.net.as_ref(), self.config.oracle_params());
            let mut oracle = DistanceOracle::new(out.spanner, 1 << self.config.spanner_k);
            // Fold the oracle's memo-cache counters into the registry
            // when instrumented; standalone snapshots keep the oracle's
            // own private cells (`cache_stats()` reads whichever is in).
            if self.metrics.oracle_cache_hits.is_active() {
                oracle = oracle.with_cache_counters(
                    self.metrics.oracle_cache_hits.clone(),
                    self.metrics.oracle_cache_misses.clone(),
                );
            }
            Arc::new(oracle)
        }))
    }

    /// The cut artifact, built on first use by running KP12 over the
    /// same shared compacted segment the oracle consumes.
    pub fn cut_data(&self) -> Arc<CutData> {
        if let Some(built) = self.cut.get() {
            self.metrics.cache_hits[ART_CUT].inc();
            return Arc::clone(built);
        }
        Arc::clone(self.cut.get_or_init(|| {
            let _t = self.metrics.build_nanos[ART_CUT].start_timer();
            self.metrics.builds[ART_CUT].inc();
            self.trace_build(ART_CUT);
            let out = run_sparsifier_net(self.net.as_ref(), self.config.cut_params());
            Arc::new(CutData {
                laplacian: Laplacian::from_weighted(&out.sparsifier),
                sparsifier_edges: out.sparsifier.num_edges(),
            })
        }))
    }

    /// Traces one artifact build under the building thread's ambient
    /// trace id — so a build forced by a pool query lands in that query's
    /// causal chain (cache *hits* are deliberately untraced: they are
    /// ~70 ns lookups the recorder would dominate).
    fn trace_build(&self, artifact: usize) {
        self.metrics.tracer.record(
            EventKind::ArtifactBuild,
            trace::current_trace_id(),
            self.metrics.tenant,
            artifact as u64,
        );
    }

    fn check_vertex(&self, v: Vertex) -> Result<(), ServiceError> {
        if (v as usize) < self.config.n {
            Ok(())
        } else {
            Err(ServiceError::VertexOutOfRange {
                vertex: v,
                n: self.config.n,
            })
        }
    }

    /// Executes one query against this frozen snapshot.
    ///
    /// # Errors
    ///
    /// [`ServiceError::VertexOutOfRange`] if the query names a vertex the
    /// graph does not have.
    pub fn execute(&self, query: &Query) -> Result<Response, ServiceError> {
        match query {
            Query::Connectivity => {
                let forest = self.forest();
                Ok(Response::Connectivity {
                    connected: forest.num_components == 1,
                    num_components: forest.num_components,
                })
            }
            Query::SameComponent(u, v) => {
                self.check_vertex(*u)?;
                self.check_vertex(*v)?;
                let forest = self.forest();
                Ok(Response::SameComponent(
                    forest.labels[*u as usize] == forest.labels[*v as usize],
                ))
            }
            Query::Distance(u, v) => {
                self.check_vertex(*u)?;
                self.check_vertex(*v)?;
                Ok(Response::Distance(self.oracle().estimate(*u, *v)))
            }
            Query::IsFar { u, v, threshold } => {
                self.check_vertex(*u)?;
                self.check_vertex(*v)?;
                Ok(Response::IsFar(self.oracle().is_far(*u, *v, *threshold)))
            }
            Query::CutEstimate(side) => {
                let mut in_side = vec![false; self.config.n];
                for &v in side {
                    self.check_vertex(v)?;
                    in_side[v as usize] = true;
                }
                Ok(Response::CutEstimate(
                    self.cut_data().laplacian.cut_value(&in_side),
                ))
            }
            Query::Stats => {
                let status = self.artifact_status();
                Ok(Response::Stats(GraphStats {
                    epoch: self.epoch,
                    num_vertices: self.config.n,
                    total_updates: self.total_updates,
                    artifacts: status,
                }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code may unwrap freely

    use super::*;
    use dsg_graph::{gen, GraphStream};

    fn snapshot_for(n: usize, seed: u64) -> (dsg_graph::Graph, EpochSnapshot) {
        let g = gen::erdos_renyi(n, 0.15, seed);
        let stream = GraphStream::with_churn(&g, 1.0, seed ^ 0xE0);
        let config = GraphConfig::new(n).seed(seed);
        let mut sketch = AgmSketch::new(n, seed);
        for up in stream.updates() {
            sketch.update(up.edge, up.delta as i128);
        }
        let net = Arc::new(stream.net_multiset());
        let total = stream.len() as u64;
        let snap = EpochSnapshot::new(1, config, sketch, net, total, Default::default());
        (g, snap)
    }

    #[test]
    fn artifacts_build_lazily_and_once() {
        let (_, snap) = snapshot_for(40, 3);
        assert_eq!(snap.artifact_status(), ArtifactStatus::default());
        let f1 = snap.forest();
        assert!(snap.artifact_status().forest);
        let f2 = snap.forest();
        assert!(Arc::ptr_eq(&f1, &f2), "forest must be built exactly once");
        let o1 = snap.oracle();
        let o2 = snap.oracle();
        assert!(Arc::ptr_eq(&o1, &o2), "oracle must be built exactly once");
    }

    #[test]
    fn component_labels_match_true_components() {
        let (g, snap) = snapshot_for(50, 4);
        let truth = dsg_graph::components::connected_components(&g);
        let forest = snap.forest();
        for u in 0..50u32 {
            for v in (u + 1)..50u32 {
                assert_eq!(
                    forest.labels[u as usize] == forest.labels[v as usize],
                    truth[u as usize] == truth[v as usize],
                    "component mismatch at ({u},{v})"
                );
            }
        }
        assert_eq!(
            forest.num_components,
            dsg_graph::components::num_components(&g)
        );
    }

    #[test]
    fn queries_validate_vertices() {
        let (_, snap) = snapshot_for(20, 5);
        assert!(matches!(
            snap.execute(&Query::SameComponent(0, 25)),
            Err(ServiceError::VertexOutOfRange { vertex: 25, n: 20 })
        ));
        assert!(matches!(
            snap.execute(&Query::Distance(21, 0)),
            Err(ServiceError::VertexOutOfRange { vertex: 21, n: 20 })
        ));
        assert!(matches!(
            snap.execute(&Query::CutEstimate(vec![0, 20])),
            Err(ServiceError::VertexOutOfRange { .. })
        ));
    }

    #[test]
    fn cut_estimate_is_close_to_truth() {
        let (g, snap) = snapshot_for(40, 6);
        let side: Vec<Vertex> = (0..20).collect();
        let Response::CutEstimate(est) = snap.execute(&Query::CutEstimate(side)).unwrap() else {
            panic!("wrong response variant");
        };
        let mut in_side = vec![false; 40];
        in_side[..20].fill(true);
        let truth = Laplacian::from_graph(&g).cut_value(&in_side);
        // KP12 at laptop scale is approximate; the estimate must at least
        // be positive for a dense random cut and within a loose factor.
        assert!(est > 0.0, "cut estimate collapsed to zero (truth {truth})");
        assert!(
            est <= 3.0 * truth + 1e-9 && est >= truth / 3.0 - 1e-9,
            "cut estimate {est} wildly off from {truth}"
        );
    }

    #[test]
    fn stats_report_epoch_and_artifacts() {
        let (_, snap) = snapshot_for(20, 7);
        let Response::Stats(stats) = snap.execute(&Query::Stats).unwrap() else {
            panic!("wrong response variant");
        };
        assert_eq!(stats.epoch, 1);
        assert_eq!(stats.num_vertices, 20);
        assert!(!stats.artifacts.forest);
        let _ = snap.forest();
        let Response::Stats(stats) = snap.execute(&Query::Stats).unwrap() else {
            panic!("wrong response variant");
        };
        assert!(stats.artifacts.forest);
    }
}
