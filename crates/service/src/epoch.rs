//! Immutable epoch snapshots and their lazily built derived artifacts.
//!
//! An [`EpochSnapshot`] is the unit of snapshot isolation: it owns the
//! merged coordinator sketch frozen at one stream position, plus the
//! **compacted net edge segment** sealed at the same position (a
//! [`NetMultiset`] — O(current edges), never O(stream length); see
//! [`crate::compact`]). Readers query it freely while ingest continues on
//! the engine; nothing in a snapshot is ever mutated after publication
//! except the one-shot initialization of its artifact cells.
//!
//! Artifacts are cached per epoch in [`OnceLock`]s:
//!
//! * **spanning forest + component labels** — decoded from the AGM sketch
//!   (Theorem 10); backs connectivity and same-component queries;
//! * **distance oracle** — the two-pass `2^k`-spanner (Theorem 1) rebuilt
//!   from the compacted segment, wrapped in the memoizing
//!   [`DistanceOracle`]; backs distance and far/near queries;
//! * **cut sparsifier** — the KP12 pipeline (Corollary 2) over the
//!   compacted segment, reduced to its [`Laplacian`]; backs cut-value
//!   estimates.
//!
//! Both multi-pass builders consume the **same** sealed segment (one
//! `Arc`, built once at epoch advance) through the multiset entry points
//! `run_two_pass_net` / `run_sparsifier_net` — no per-artifact log
//! materialization. Rebuilding from the net multiset is bit-identical to
//! replaying the raw log, because each pass's stream-facing state is
//! linear in the updates and everything between passes is a deterministic
//! function of that state; `crates/service/tests/net_props.rs` asserts
//! the order-insensitivity end to end.
//!
//! `OnceLock::get_or_init` guarantees each artifact is built exactly once
//! per epoch no matter how many readers race for it; advancing the epoch
//! publishes a new snapshot, which *is* the cache invalidation.

use crate::metrics::{ArtifactMetrics, ART_CUT, ART_FOREST, ART_ORACLE};
use crate::query::{GraphStats, Query, Response};
use crate::{GraphConfig, ServiceError};
use dsg_agm::forest::ForestResult;
use dsg_agm::AgmSketch;
use dsg_graph::components::UnionFind;
use dsg_graph::{Edge, Graph, NetMultiset, SegmentDelta, Vertex};
use dsg_spanner::oracle::DistanceOracle;
use dsg_spanner::twopass::{self, TwoPassSpanner};
use dsg_sparsifier::pipeline::{run_sparsifier_net_retained, TwoPassSparsifier};
use dsg_sparsifier::Laplacian;
use dsg_telemetry::{trace, EventKind};
use std::collections::HashSet;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Signed weight updates turning the previous epoch's sparsifier edge
/// list into the new one — `(edge, 0.0)` deletes, any other entry sets
/// the edge's new weight. Both inputs are sorted by edge, so one merge
/// scan finds the differences; weights compare by bit pattern because
/// the patched Laplacian must be bit-identical to a rebuilt one.
fn laplacian_updates(prev: &Laplacian, new_edges: &[(Edge, f64)]) -> Vec<(Edge, f64)> {
    let prev_triples = prev.edge_triples();
    let mut updates = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < prev_triples.len() && j < new_edges.len() {
        let (u, v, w) = prev_triples[i];
        let pe = Edge::new(u, v);
        let (ne, nw) = new_edges[j];
        match pe.cmp(&ne) {
            std::cmp::Ordering::Less => {
                updates.push((pe, 0.0));
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                updates.push((ne, nw));
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                if w.to_bits() != nw.to_bits() {
                    updates.push((pe, nw));
                }
                i += 1;
                j += 1;
            }
        }
    }
    while i < prev_triples.len() {
        let (u, v, _) = prev_triples[i];
        updates.push((Edge::new(u, v), 0.0));
        i += 1;
    }
    updates.extend_from_slice(&new_edges[j..]);
    updates
}

/// The spanning forest of an epoch plus the component structure derived
/// from it, so membership queries are O(1) after one decode.
#[derive(Debug, Clone)]
pub struct ForestData {
    /// The decoded forest (Theorem 10).
    pub result: ForestResult,
    /// Component representative per vertex (two vertices are connected
    /// iff their labels are equal).
    pub labels: Vec<Vertex>,
    /// Number of connected components (isolated vertices included).
    pub num_components: usize,
}

/// The cut-query artifact: the KP12 sparsifier collapsed to a Laplacian.
#[derive(Debug, Clone)]
pub struct CutData {
    /// Laplacian of the weighted sparsifier.
    pub laplacian: Laplacian,
    /// Edges the sparsifier kept.
    pub sparsifier_edges: usize,
}

/// Which artifacts of a snapshot have been built so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArtifactStatus {
    /// Spanning forest + component labels.
    pub forest: bool,
    /// Spanner-backed distance oracle.
    pub oracle: bool,
    /// KP12 cut sparsifier.
    pub cut: bool,
}

/// An immutable view of one served graph frozen at an epoch boundary.
#[derive(Debug)]
pub struct EpochSnapshot {
    epoch: u64,
    config: GraphConfig,
    total_updates: u64,
    sketch: AgmSketch,
    /// The compacted net edge segment sealed at the epoch boundary — the
    /// single shared multi-pass input both the oracle and the cut
    /// builders rebuild from (O(current edges), order-free).
    net: Arc<NetMultiset>,
    forest: OnceLock<Arc<ForestData>>,
    oracle: OnceLock<Arc<DistanceOracle>>,
    cut: OnceLock<Arc<CutData>>,
    /// Predecessor link for incremental artifact maintenance, installed
    /// at publish time. Publishing a successor clears the predecessor's
    /// own link, so the chain never grows past depth 1.
    prev: Mutex<Option<Arc<EpochSnapshot>>>,
    /// Segment diff against the linked predecessor, computed once on
    /// first incremental attempt (one merge scan of the two segments).
    delta: OnceLock<Arc<SegmentDelta>>,
    /// Retained two-pass spanner state (the pass-1/pass-2 linear states
    /// of the oracle build), kept so the *next* epoch can patch them
    /// with the segment diff instead of re-ingesting its whole segment.
    /// The successor *moves* the state out when it patches (the retained
    /// sketches are large — deep-cloning them costs more than the patch
    /// itself); a snapshot whose state was taken simply can no longer
    /// seed a second patch chain, which a depth-1 chain never needs.
    retained_spanner: Mutex<Option<Arc<TwoPassSpanner>>>,
    /// Retained KP12 pipeline state, for the same reason.
    retained_sparsifier: Mutex<Option<Arc<TwoPassSparsifier>>>,
    /// Telemetry handles for the artifact cells: build timings,
    /// build-once counters, cache hits, and the oracle's memo-cache
    /// counters. All-no-op for directly constructed snapshots.
    metrics: ArtifactMetrics,
}

impl EpochSnapshot {
    /// Builds a snapshot. Internal to the crate: snapshots are published
    /// by [`crate::ServedGraph::advance_epoch`].
    pub(crate) fn new(
        epoch: u64,
        config: GraphConfig,
        sketch: AgmSketch,
        net: Arc<NetMultiset>,
        total_updates: u64,
        metrics: ArtifactMetrics,
    ) -> Self {
        Self {
            epoch,
            config,
            total_updates,
            sketch,
            net,
            forest: OnceLock::new(),
            oracle: OnceLock::new(),
            cut: OnceLock::new(),
            prev: Mutex::new(None),
            delta: OnceLock::new(),
            retained_spanner: Mutex::new(None),
            retained_sparsifier: Mutex::new(None),
            metrics,
        }
    }

    /// Links the predecessor snapshot (called once, by the publisher).
    pub(crate) fn set_prev(&self, prev: Arc<EpochSnapshot>) {
        *self.prev.lock().expect("prev lock poisoned") = Some(prev);
    }

    /// Drops the predecessor link (called on the old snapshot when its
    /// successor is published, bounding the chain at depth 1).
    pub(crate) fn clear_prev(&self) {
        self.prev.lock().expect("prev lock poisoned").take();
    }

    /// The linked predecessor snapshot, while one is installed.
    pub fn prev(&self) -> Option<Arc<EpochSnapshot>> {
        self.prev.lock().expect("prev lock poisoned").clone()
    }

    fn store_retained_spanner(&self, alg: TwoPassSpanner) {
        *self
            .retained_spanner
            .lock()
            .expect("retained lock poisoned") = Some(Arc::new(alg));
    }

    /// Moves the retained oracle spanner state out for a successor's
    /// patch; `None` if the oracle was never built here or a successor
    /// already took it.
    fn take_retained_spanner(&self) -> Option<Arc<TwoPassSpanner>> {
        self.retained_spanner
            .lock()
            .expect("retained lock poisoned")
            .take()
    }

    fn store_retained_sparsifier(&self, alg: TwoPassSparsifier) {
        *self
            .retained_sparsifier
            .lock()
            .expect("retained lock poisoned") = Some(Arc::new(alg));
    }

    /// Moves the retained KP12 pipeline state out for a successor's
    /// patch; `None` if the cut was never built here or a successor
    /// already took it.
    fn take_retained_sparsifier(&self) -> Option<Arc<TwoPassSparsifier>> {
        self.retained_sparsifier
            .lock()
            .expect("retained lock poisoned")
            .take()
    }

    /// The segment diff against `prev`, computed once per snapshot.
    fn delta_from(&self, prev: &EpochSnapshot) -> Arc<SegmentDelta> {
        Arc::clone(
            self.delta
                .get_or_init(|| Arc::new(self.net.diff(prev.net_edges()))),
        )
    }

    /// The patch-vs-rebuild decision rule: patch only when the diff holds
    /// at most `churn_threshold × live_edges` changes. Purely a
    /// performance choice — both paths produce bit-identical artifacts.
    fn within_churn_budget(&self, delta: &SegmentDelta) -> bool {
        delta.num_changes() as f64 <= self.config.churn_threshold * self.net.num_edges() as f64
    }

    /// The epoch number (0 is the empty snapshot a graph starts with).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The graph's configuration.
    pub fn config(&self) -> &GraphConfig {
        &self.config
    }

    /// Vertices of the served graph.
    pub fn num_vertices(&self) -> usize {
        self.config.n
    }

    /// Updates frozen into this snapshot.
    pub fn total_updates(&self) -> u64 {
        self.total_updates
    }

    /// The merged coordinator sketch frozen at the epoch boundary.
    pub fn sketch(&self) -> &AgmSketch {
        &self.sketch
    }

    /// Which artifacts have been built so far.
    pub fn artifact_status(&self) -> ArtifactStatus {
        ArtifactStatus {
            forest: self.forest.get().is_some(),
            oracle: self.oracle.get().is_some(),
            cut: self.cut.get().is_some(),
        }
    }

    /// The compacted net edge segment frozen into this snapshot — the
    /// shared multi-pass artifact input, and (for offline verification)
    /// an exact order-free summary of the frozen prefix.
    pub fn net_edges(&self) -> &Arc<NetMultiset> {
        &self.net
    }

    /// The forest artifact, built on first use (one sketch decode).
    pub fn forest(&self) -> Arc<ForestData> {
        if let Some(built) = self.forest.get() {
            self.metrics.cache_hits[ART_FOREST].inc();
            return Arc::clone(built);
        }
        Arc::clone(self.forest.get_or_init(|| {
            let _t = self.metrics.build_nanos[ART_FOREST].start_timer();
            self.metrics.builds[ART_FOREST].inc();
            self.trace_build(ART_FOREST);
            if let Some(patched) = self.try_patch_forest() {
                return patched;
            }
            self.metrics.record_full(ART_FOREST);
            Self::forest_data(self.config.n, self.sketch.spanning_forest())
        }))
    }

    /// Derives labels and the component count from a decoded forest.
    fn forest_data(n: usize, result: ForestResult) -> Arc<ForestData> {
        let mut uf = UnionFind::new(n);
        for e in &result.edges {
            uf.union(e.u(), e.v());
        }
        let labels: Vec<Vertex> = (0..n as Vertex).map(|v| uf.find(v)).collect();
        let num_components = uf.num_components();
        Arc::new(ForestData {
            result,
            labels,
            num_components,
        })
    }

    /// Attempts the O(changes) forest refresh: restricted Borůvka over
    /// only the components the segment diff touched, splicing the
    /// predecessor's forest edges in everywhere else. Returns `None`
    /// (→ full rebuild) when no predecessor with a built forest is
    /// linked or the diff exceeds the churn budget. The edge set is
    /// bit-identical to a full decode either way; only
    /// `ForestResult::decode_failures` (a diagnostic) is scoped to the
    /// re-decoded components.
    fn try_patch_forest(&self) -> Option<Arc<ForestData>> {
        let prev = self.prev()?;
        let prev_forest = Arc::clone(prev.forest.get()?);
        let delta = self.delta_from(&prev);
        if !self.within_churn_budget(&delta) {
            return None;
        }
        let started = Instant::now();
        // A component is dirty iff the diff changed the net multiplicity
        // of an edge incident to it — weight-only changes are invisible
        // to the AGM sketch.
        let mut dirty_labels: HashSet<Vertex> = HashSet::new();
        delta.for_each_multiplicity_delta(&mut |e, _, _| {
            dirty_labels.insert(prev_forest.labels[e.u() as usize]);
            dirty_labels.insert(prev_forest.labels[e.v() as usize]);
        });
        let active: Vec<bool> = prev_forest
            .labels
            .iter()
            .map(|l| dirty_labels.contains(l))
            .collect();
        // A forest edge's endpoints share a component, so testing one
        // endpoint classifies the edge.
        let kept: Vec<Edge> = prev_forest
            .result
            .edges
            .iter()
            .copied()
            .filter(|e| !active[e.u() as usize])
            .collect();
        let result = self.sketch.spanning_forest_restricted(&active, &kept);
        let data = Self::forest_data(self.config.n, result);
        self.record_patch(ART_FOREST, started);
        Some(data)
    }

    /// The distance-oracle artifact, built on first use by running the
    /// two-pass spanner over the shared compacted segment (deterministic
    /// in the graph seed, so every rebuild of the same epoch agrees, and
    /// bit-identical to a raw-log replay by pass linearity).
    pub fn oracle(&self) -> Arc<DistanceOracle> {
        if let Some(built) = self.oracle.get() {
            self.metrics.cache_hits[ART_ORACLE].inc();
            return Arc::clone(built);
        }
        Arc::clone(self.oracle.get_or_init(|| {
            let _t = self.metrics.build_nanos[ART_ORACLE].start_timer();
            self.metrics.builds[ART_ORACLE].inc();
            self.trace_build(ART_ORACLE);
            if let Some(patched) = self.try_patch_oracle() {
                return patched;
            }
            self.metrics.record_full(ART_ORACLE);
            let (out, alg) =
                twopass::run_two_pass_net_retained(self.net.as_ref(), self.config.oracle_params());
            self.store_retained_spanner(alg);
            Arc::new(self.wrap_oracle(out.spanner))
        }))
    }

    /// Wraps a spanner in the oracle, folding its memo-cache counters
    /// into the registry when instrumented; standalone snapshots keep the
    /// oracle's own private cells (`cache_stats()` reads whichever is in).
    fn wrap_oracle(&self, spanner: Graph) -> DistanceOracle {
        let mut oracle = DistanceOracle::new(spanner, 1 << self.config.spanner_k);
        if self.metrics.oracle_cache_hits.is_active() {
            oracle = oracle.with_cache_counters(
                self.metrics.oracle_cache_hits.clone(),
                self.metrics.oracle_cache_misses.clone(),
            );
        }
        oracle
    }

    /// Attempts the O(changes) oracle refresh: take over the
    /// predecessor's retained two-pass state, patch its linear pass
    /// states with the segment diff, and re-decode — bit-identical to
    /// re-ingesting the whole segment, by pass linearity. Cached BFS rows
    /// of the previous oracle carry over for every source whose spanner
    /// component no added or removed spanner edge touches (those rows are
    /// provably unchanged).
    fn try_patch_oracle(&self) -> Option<Arc<DistanceOracle>> {
        let prev = self.prev()?;
        let prev_oracle = Arc::clone(prev.oracle.get()?);
        let delta = self.delta_from(&prev);
        if !self.within_churn_budget(&delta) {
            return None;
        }
        let retained = prev.take_retained_spanner()?;
        let started = Instant::now();
        let mut alg = Arc::try_unwrap(retained).unwrap_or_else(|shared| (*shared).clone());
        let spanner = alg.patch(delta.as_ref(), self.net.as_ref()).spanner.clone();
        self.store_retained_spanner(alg);
        let oracle = self.wrap_oracle(spanner);
        let prev_edges: HashSet<Edge> = prev_oracle.spanner().edges().iter().copied().collect();
        let new_edges: HashSet<Edge> = oracle.spanner().edges().iter().copied().collect();
        let mut touched: Vec<Vertex> = Vec::new();
        for e in prev_edges.symmetric_difference(&new_edges) {
            touched.push(e.u());
            touched.push(e.v());
        }
        if touched.is_empty() {
            oracle.warm_from(&prev_oracle, &|_| true);
        } else {
            // Components are taken over the *previous* spanner: a kept
            // row is a BFS over that graph, and it stays valid exactly
            // when its whole component is untouched by the edge diff.
            let mut uf = UnionFind::new(self.config.n);
            for e in prev_oracle.spanner().edges() {
                uf.union(e.u(), e.v());
            }
            let labels: Vec<Vertex> = (0..self.config.n as Vertex).map(|v| uf.find(v)).collect();
            let dirty: HashSet<Vertex> = touched.iter().map(|&v| labels[v as usize]).collect();
            oracle.warm_from(&prev_oracle, &|src| !dirty.contains(&labels[src as usize]));
        }
        self.record_patch(ART_ORACLE, started);
        Some(Arc::new(oracle))
    }

    /// The cut artifact, built on first use by running KP12 over the
    /// same shared compacted segment the oracle consumes.
    pub fn cut_data(&self) -> Arc<CutData> {
        if let Some(built) = self.cut.get() {
            self.metrics.cache_hits[ART_CUT].inc();
            return Arc::clone(built);
        }
        Arc::clone(self.cut.get_or_init(|| {
            let _t = self.metrics.build_nanos[ART_CUT].start_timer();
            self.metrics.builds[ART_CUT].inc();
            self.trace_build(ART_CUT);
            if let Some(patched) = self.try_patch_cut() {
                return patched;
            }
            self.metrics.record_full(ART_CUT);
            let (out, alg) =
                run_sparsifier_net_retained(self.net.as_ref(), self.config.cut_params());
            self.store_retained_sparsifier(alg);
            Arc::new(CutData {
                laplacian: Laplacian::from_weighted(&out.sparsifier),
                sparsifier_edges: out.sparsifier.num_edges(),
            })
        }))
    }

    /// Attempts the O(changes) cut refresh: patch the predecessor's
    /// retained KP12 pipeline with the diff (only the inner spanners
    /// whose subsample filters intersect the diff do any work), then
    /// splice the sparsifier's weight changes into the previous Laplacian
    /// as ±w edge updates instead of rebuilding it with `from_weighted`.
    fn try_patch_cut(&self) -> Option<Arc<CutData>> {
        let prev = self.prev()?;
        let prev_cut = Arc::clone(prev.cut.get()?);
        let delta = self.delta_from(&prev);
        if !self.within_churn_budget(&delta) {
            return None;
        }
        let retained = prev.take_retained_sparsifier()?;
        let started = Instant::now();
        let mut alg = Arc::try_unwrap(retained).unwrap_or_else(|shared| (*shared).clone());
        let out = alg.patch(delta.as_ref(), self.net.as_ref());
        self.store_retained_sparsifier(alg);
        let updates = laplacian_updates(&prev_cut.laplacian, out.sparsifier.edges());
        let laplacian = prev_cut.laplacian.apply_edge_updates(updates);
        let data = Arc::new(CutData {
            laplacian,
            sparsifier_edges: out.sparsifier.num_edges(),
        });
        self.record_patch(ART_CUT, started);
        Some(data)
    }

    /// Records a successful patch: counters + histogram + shared tallies,
    /// and one flight-recorder event under the ambient trace id.
    fn record_patch(&self, artifact: usize, started: Instant) {
        let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.metrics.record_patch(artifact, nanos);
        self.metrics.tracer.record(
            EventKind::ArtifactPatch,
            trace::current_trace_id(),
            self.metrics.tenant,
            artifact as u64,
        );
    }

    /// Traces one artifact build under the building thread's ambient
    /// trace id — so a build forced by a pool query lands in that query's
    /// causal chain (cache *hits* are deliberately untraced: they are
    /// ~70 ns lookups the recorder would dominate).
    fn trace_build(&self, artifact: usize) {
        self.metrics.tracer.record(
            EventKind::ArtifactBuild,
            trace::current_trace_id(),
            self.metrics.tenant,
            artifact as u64,
        );
    }

    fn check_vertex(&self, v: Vertex) -> Result<(), ServiceError> {
        if (v as usize) < self.config.n {
            Ok(())
        } else {
            Err(ServiceError::VertexOutOfRange {
                vertex: v,
                n: self.config.n,
            })
        }
    }

    /// Executes one query against this frozen snapshot.
    ///
    /// # Errors
    ///
    /// [`ServiceError::VertexOutOfRange`] if the query names a vertex the
    /// graph does not have.
    pub fn execute(&self, query: &Query) -> Result<Response, ServiceError> {
        match query {
            Query::Connectivity => {
                let forest = self.forest();
                Ok(Response::Connectivity {
                    connected: forest.num_components == 1,
                    num_components: forest.num_components,
                })
            }
            Query::SameComponent(u, v) => {
                self.check_vertex(*u)?;
                self.check_vertex(*v)?;
                let forest = self.forest();
                Ok(Response::SameComponent(
                    forest.labels[*u as usize] == forest.labels[*v as usize],
                ))
            }
            Query::Distance(u, v) => {
                self.check_vertex(*u)?;
                self.check_vertex(*v)?;
                Ok(Response::Distance(self.oracle().estimate(*u, *v)))
            }
            Query::IsFar { u, v, threshold } => {
                self.check_vertex(*u)?;
                self.check_vertex(*v)?;
                Ok(Response::IsFar(self.oracle().is_far(*u, *v, *threshold)))
            }
            Query::CutEstimate(side) => {
                let mut in_side = vec![false; self.config.n];
                for &v in side {
                    self.check_vertex(v)?;
                    in_side[v as usize] = true;
                }
                Ok(Response::CutEstimate(
                    self.cut_data().laplacian.cut_value(&in_side),
                ))
            }
            Query::Stats => {
                let status = self.artifact_status();
                Ok(Response::Stats(GraphStats {
                    epoch: self.epoch,
                    num_vertices: self.config.n,
                    total_updates: self.total_updates,
                    artifacts: status,
                }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code may unwrap freely

    use super::*;
    use dsg_graph::{gen, GraphStream};

    fn snapshot_for(n: usize, seed: u64) -> (dsg_graph::Graph, EpochSnapshot) {
        let g = gen::erdos_renyi(n, 0.15, seed);
        let stream = GraphStream::with_churn(&g, 1.0, seed ^ 0xE0);
        let config = GraphConfig::new(n).seed(seed);
        let mut sketch = AgmSketch::new(n, seed);
        for up in stream.updates() {
            sketch.update(up.edge, up.delta as i128);
        }
        let net = Arc::new(stream.net_multiset());
        let total = stream.len() as u64;
        let snap = EpochSnapshot::new(1, config, sketch, net, total, Default::default());
        (g, snap)
    }

    #[test]
    fn artifacts_build_lazily_and_once() {
        let (_, snap) = snapshot_for(40, 3);
        assert_eq!(snap.artifact_status(), ArtifactStatus::default());
        let f1 = snap.forest();
        assert!(snap.artifact_status().forest);
        let f2 = snap.forest();
        assert!(Arc::ptr_eq(&f1, &f2), "forest must be built exactly once");
        let o1 = snap.oracle();
        let o2 = snap.oracle();
        assert!(Arc::ptr_eq(&o1, &o2), "oracle must be built exactly once");
    }

    #[test]
    fn component_labels_match_true_components() {
        let (g, snap) = snapshot_for(50, 4);
        let truth = dsg_graph::components::connected_components(&g);
        let forest = snap.forest();
        for u in 0..50u32 {
            for v in (u + 1)..50u32 {
                assert_eq!(
                    forest.labels[u as usize] == forest.labels[v as usize],
                    truth[u as usize] == truth[v as usize],
                    "component mismatch at ({u},{v})"
                );
            }
        }
        assert_eq!(
            forest.num_components,
            dsg_graph::components::num_components(&g)
        );
    }

    #[test]
    fn queries_validate_vertices() {
        let (_, snap) = snapshot_for(20, 5);
        assert!(matches!(
            snap.execute(&Query::SameComponent(0, 25)),
            Err(ServiceError::VertexOutOfRange { vertex: 25, n: 20 })
        ));
        assert!(matches!(
            snap.execute(&Query::Distance(21, 0)),
            Err(ServiceError::VertexOutOfRange { vertex: 21, n: 20 })
        ));
        assert!(matches!(
            snap.execute(&Query::CutEstimate(vec![0, 20])),
            Err(ServiceError::VertexOutOfRange { .. })
        ));
    }

    #[test]
    fn cut_estimate_is_close_to_truth() {
        let (g, snap) = snapshot_for(40, 6);
        let side: Vec<Vertex> = (0..20).collect();
        let Response::CutEstimate(est) = snap.execute(&Query::CutEstimate(side)).unwrap() else {
            panic!("wrong response variant");
        };
        let mut in_side = vec![false; 40];
        in_side[..20].fill(true);
        let truth = Laplacian::from_graph(&g).cut_value(&in_side);
        // KP12 at laptop scale is approximate; the estimate must at least
        // be positive for a dense random cut and within a loose factor.
        assert!(est > 0.0, "cut estimate collapsed to zero (truth {truth})");
        assert!(
            est <= 3.0 * truth + 1e-9 && est >= truth / 3.0 - 1e-9,
            "cut estimate {est} wildly off from {truth}"
        );
    }

    #[test]
    fn stats_report_epoch_and_artifacts() {
        let (_, snap) = snapshot_for(20, 7);
        let Response::Stats(stats) = snap.execute(&Query::Stats).unwrap() else {
            panic!("wrong response variant");
        };
        assert_eq!(stats.epoch, 1);
        assert_eq!(stats.num_vertices, 20);
        assert!(!stats.artifacts.forest);
        let _ = snap.forest();
        let Response::Stats(stats) = snap.execute(&Query::Stats).unwrap() else {
            panic!("wrong response variant");
        };
        assert!(stats.artifacts.forest);
    }
}
