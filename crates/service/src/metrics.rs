//! Per-graph telemetry handle bundles for the serving layer.
//!
//! All handles are registered once, when the graph is created or
//! restored — hot paths (ingest, query execution, artifact access) only
//! touch pre-resolved [`Counter`]/[`Histogram`] handles, never the
//! registry's name map. Label sets are baked into the series names here
//! (`graph="…"`, `shard="…"`, `phase="…"`), so recording an event is one
//! relaxed atomic op with zero allocation.
//!
//! Naming scheme (see `DESIGN.md` § Observability): every series is
//! `dsg_<layer>_<what>_<unit-or-total>` with the owning tenant in a
//! `graph` label — `dsg_engine_*` for the ingest engine, `dsg_service_*`
//! for epochs, artifacts, and queries, `dsg_store_*` for durability.

use dsg_engine::EngineMetrics;
use dsg_telemetry::{series, Counter, FlightRecorder, Histogram, MetricRegistry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Prometheus-style `query` label value per [`crate::Query`] variant, in
/// [`crate::Query::variant_index`] order.
pub(crate) const QUERY_VARIANTS: [&str; 6] = [
    "connectivity",
    "same_component",
    "distance",
    "is_far",
    "cut_estimate",
    "stats",
];

/// `artifact` label values, indexed by the `ART_*` constants.
pub(crate) const ARTIFACTS: [&str; 3] = ["forest", "oracle", "laplacian"];
/// Index of the spanning-forest artifact in [`ARTIFACTS`]-shaped arrays.
pub(crate) const ART_FOREST: usize = 0;
/// Index of the distance-oracle artifact.
pub(crate) const ART_ORACLE: usize = 1;
/// Index of the cut-sparsifier Laplacian artifact.
pub(crate) const ART_CUT: usize = 2;

/// Per-graph incremental-vs-full refresh tallies, kept in plain atomics
/// **outside** the metric registry so the `/epochz` admin view can report
/// them even when telemetry is a no-op. One instance per graph, shared by
/// every snapshot's [`ArtifactMetrics`] clone.
#[derive(Debug, Default)]
pub(crate) struct ArtifactChoiceStats {
    /// Artifact refreshes served by patching the previous epoch.
    pub incremental_total: AtomicU64,
    /// Artifact refreshes that fell back to (or started as) full builds.
    pub full_total: AtomicU64,
    /// Wall time of the most recent successful patch, nanoseconds
    /// (0 until the first patch).
    pub last_patch_nanos: AtomicU64,
}

/// Handles for one epoch snapshot's derived-artifact cache: build
/// latency, build-once counters, and `OnceLock` cache hits per artifact,
/// plus the distance oracle's internal memo-cache counters (folded into
/// the registry; `DistanceOracle::cache_stats()` reads the same cells).
///
/// `Default` yields all-no-op handles, which is what directly
/// constructed snapshots (tests, offline tools) get.
#[derive(Debug, Clone, Default)]
pub(crate) struct ArtifactMetrics {
    /// Build wall time per artifact, nanoseconds.
    pub build_nanos: [Histogram; 3],
    /// Builds per artifact (at most one per epoch, by `OnceLock`).
    pub builds: [Counter; 3],
    /// Accesses served from the already-built artifact.
    pub cache_hits: [Counter; 3],
    /// Refreshes served by patching the previous epoch's artifact.
    pub incremental: [Counter; 3],
    /// Refreshes that ran the full from-scratch build (no usable
    /// predecessor, or the segment diff exceeded the churn threshold).
    pub full: [Counter; 3],
    /// Patch wall time per artifact, nanoseconds (successful patches
    /// only; full builds land in `build_nanos`).
    pub patch_nanos: [Histogram; 3],
    /// Registry-independent tallies for the `/epochz` admin view.
    pub shared: Arc<ArtifactChoiceStats>,
    /// Distance-oracle per-source memo cache hits.
    pub oracle_cache_hits: Counter,
    /// Distance-oracle per-source memo cache misses.
    pub oracle_cache_misses: Counter,
    /// Flight recorder the snapshot's artifact builds trace into (one
    /// `ArtifactBuild` event per `OnceLock` init, under the building
    /// thread's ambient trace id).
    pub tracer: FlightRecorder,
    /// Interned tenant token for trace events (0 = none).
    pub tenant: u32,
}

impl ArtifactMetrics {
    /// Records one artifact refresh served by patching: counters,
    /// patch-latency histogram, and the registry-independent tallies.
    pub(crate) fn record_patch(&self, artifact: usize, nanos: u64) {
        self.incremental[artifact].inc();
        self.patch_nanos[artifact].record(nanos);
        self.shared
            .incremental_total
            .fetch_add(1, Ordering::Relaxed);
        self.shared.last_patch_nanos.store(nanos, Ordering::Relaxed);
    }

    /// Records one artifact refresh that ran the full build path.
    pub(crate) fn record_full(&self, artifact: usize) {
        self.full[artifact].inc();
        self.shared.full_total.fetch_add(1, Ordering::Relaxed);
    }
}

/// Every telemetry handle one [`crate::ServedGraph`] records through,
/// resolved once at graph creation/restore.
#[derive(Debug, Clone, Default)]
pub(crate) struct GraphMetrics {
    /// Handles the ingest engine updates from its dispatch path.
    pub engine: EngineMetrics,
    /// Insert/delete pair annihilations in each shard's compacted log
    /// (every validated deletion cancels one prior insertion).
    pub cancellations: Vec<Counter>,
    /// Epoch-advance phase: forking the shard sketches under the ingest
    /// lock.
    pub epoch_fork: Histogram,
    /// Epoch-advance phase: reducing the forks to the coordinator sketch.
    pub epoch_merge: Histogram,
    /// Epoch-advance phase: sealing the compacted log's net segments.
    pub epoch_seal: Histogram,
    /// Epoch-advance phase: wire-format serialize + header peek
    /// (only the `advance_epoch_via_wire` path records this).
    pub epoch_wire: Histogram,
    /// Query execution latency per [`crate::Query`] variant, in
    /// [`crate::Query::variant_index`] order.
    pub queries: [Histogram; 6],
    /// Handles handed to each published [`crate::EpochSnapshot`].
    pub artifacts: ArtifactMetrics,
    /// Flight recorder this graph's ingest and epoch paths trace into.
    pub tracer: FlightRecorder,
    /// This graph's interned tenant token (0 = none).
    pub tenant: u32,
}

impl GraphMetrics {
    /// Registers (or re-resolves) every series for graph `graph` with
    /// `shards` ingest shards, and interns the graph name as the tenant
    /// token of its trace events. Against a no-op registry this hands
    /// back all-no-op handles and registers nothing; against a no-op
    /// recorder every trace event is one dead branch.
    pub(crate) fn for_graph(
        reg: &MetricRegistry,
        tracer: &FlightRecorder,
        graph: &str,
        shards: usize,
    ) -> Self {
        let tenant = tracer.intern(graph);
        let g = |name: &str| series(name, &[("graph", graph)]);
        let per_shard = |name: &str| -> Vec<Counter> {
            (0..shards)
                .map(|s| {
                    reg.counter(&series(
                        name,
                        &[("graph", graph), ("shard", &s.to_string())],
                    ))
                })
                .collect()
        };
        let phase = |p: &str| {
            reg.histogram(&series(
                "dsg_service_epoch_phase_nanos",
                &[("graph", graph), ("phase", p)],
            ))
        };
        let per_artifact_hist = |name: &str| -> [Histogram; 3] {
            ARTIFACTS.map(|a| reg.histogram(&series(name, &[("artifact", a), ("graph", graph)])))
        };
        let per_artifact_ctr = |name: &str| -> [Counter; 3] {
            ARTIFACTS.map(|a| reg.counter(&series(name, &[("artifact", a), ("graph", graph)])))
        };
        Self {
            engine: EngineMetrics {
                routed: per_shard("dsg_engine_updates_routed_total"),
                batches_sent: reg.counter(&g("dsg_engine_batches_sent_total")),
                send_wait: reg.histogram(&g("dsg_engine_send_wait_nanos")),
                load_balance: reg.gauge(&g("dsg_engine_load_balance")),
                tracer: tracer.clone(),
                tenant,
            },
            cancellations: per_shard("dsg_engine_cancellations_total"),
            epoch_fork: phase("fork"),
            epoch_merge: phase("merge"),
            epoch_seal: phase("seal"),
            epoch_wire: phase("wire"),
            queries: QUERY_VARIANTS.map(|q| {
                reg.histogram(&series(
                    "dsg_service_query_nanos",
                    &[("graph", graph), ("query", q)],
                ))
            }),
            artifacts: ArtifactMetrics {
                build_nanos: per_artifact_hist("dsg_service_artifact_build_nanos"),
                builds: per_artifact_ctr("dsg_service_artifact_builds_total"),
                cache_hits: per_artifact_ctr("dsg_service_artifact_cache_hits_total"),
                incremental: per_artifact_ctr("dsg_service_artifact_incremental_total"),
                full: per_artifact_ctr("dsg_service_artifact_full_total"),
                patch_nanos: per_artifact_hist("dsg_service_artifact_patch_nanos"),
                shared: Arc::new(ArtifactChoiceStats::default()),
                oracle_cache_hits: reg.counter(&g("dsg_service_oracle_cache_hits_total")),
                oracle_cache_misses: reg.counter(&g("dsg_service_oracle_cache_misses_total")),
                tracer: tracer.clone(),
                tenant,
            },
            tracer: tracer.clone(),
            tenant,
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code may unwrap freely

    use super::*;

    #[test]
    fn for_graph_registers_label_complete_series() {
        let reg = MetricRegistry::new();
        let m = GraphMetrics::for_graph(&reg, &FlightRecorder::noop(), "social", 3);
        assert_eq!(m.engine.routed.len(), 3);
        assert_eq!(m.cancellations.len(), 3);
        m.engine.routed[2].add(7);
        m.queries[0].record(100);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("dsg_engine_updates_routed_total{graph=\"social\",shard=\"2\"}"),
            Some(7)
        );
        assert_eq!(
            snap.histogram("dsg_service_query_nanos{graph=\"social\",query=\"connectivity\"}")
                .unwrap()
                .count(),
            1
        );
    }

    #[test]
    fn noop_registry_hands_out_noop_handles() {
        let reg = MetricRegistry::noop();
        let m = GraphMetrics::for_graph(&reg, &FlightRecorder::noop(), "g", 2);
        assert!(!m.engine.batches_sent.is_active());
        assert!(!m.epoch_fork.is_active());
        assert!(!m.artifacts.oracle_cache_hits.is_active());
        m.engine.batches_sent.inc();
        assert_eq!(reg.len(), 0, "no-op registry must register nothing");
    }

    #[test]
    fn default_metrics_are_noop() {
        let m = GraphMetrics::default();
        assert!(!m.epoch_seal.is_active());
        assert!(m.cancellations.is_empty());
    }
}
