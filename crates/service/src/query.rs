//! The typed query API and the worker pool that executes it.
//!
//! [`Query`] names the read operations the paper's structures support:
//! connectivity and same-component from the AGM spanning forest (Theorem
//! 10), distance estimates and far/near threshold tests from the spanner
//! oracle (Theorem 1, the `ESTIMATE` primitive of Algorithm 4), cut-value
//! estimates from the KP12 sparsifier (Corollary 2, the cut queries of
//! Goel–Kapralov–Post), and a stats probe. [`QueryService`] fans queries
//! out to a pool of worker threads over the shared [`GraphRegistry`];
//! each worker resolves the target graph's *current* epoch snapshot and
//! executes against it, so workers never block ingest and ingest never
//! tears a read.

use crate::audit::AuditSample;
use crate::epoch::ArtifactStatus;
use crate::metrics::QUERY_VARIANTS;
use crate::registry::GraphRegistry;
use crate::ServiceError;
use dsg_graph::Vertex;
use dsg_telemetry::{trace, EventKind, FlightRecorder, Histogram};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A read operation against one served graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// Is the graph connected, and how many components does it have?
    Connectivity,
    /// Are two vertices in the same connected component?
    SameComponent(Vertex, Vertex),
    /// Stretch-`2^k` distance estimate between two vertices (`None` when
    /// disconnected).
    Distance(Vertex, Vertex),
    /// Is the estimated distance strictly greater than `threshold`?
    IsFar {
        /// Source vertex.
        u: Vertex,
        /// Target vertex.
        v: Vertex,
        /// The distance threshold.
        threshold: u32,
    },
    /// Estimated weight of the cut separating `side` from the rest.
    CutEstimate(Vec<Vertex>),
    /// Epoch / ingest / artifact diagnostics.
    Stats,
}

impl Query {
    /// Dense index of this variant, `0..6` — the row a per-variant
    /// telemetry table keys on.
    pub fn variant_index(&self) -> usize {
        match self {
            Query::Connectivity => 0,
            Query::SameComponent(..) => 1,
            Query::Distance(..) => 2,
            Query::IsFar { .. } => 3,
            Query::CutEstimate(..) => 4,
            Query::Stats => 5,
        }
    }

    /// The `query` label value this variant reports under in telemetry
    /// series (e.g. `dsg_service_query_nanos{query="distance"}`).
    pub fn variant_label(&self) -> &'static str {
        QUERY_VARIANTS[self.variant_index()]
    }
}

/// Diagnostics returned by [`Query::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphStats {
    /// The answering snapshot's epoch.
    pub epoch: u64,
    /// Vertices of the served graph.
    pub num_vertices: usize,
    /// Updates frozen into the answering snapshot.
    pub total_updates: u64,
    /// Which derived artifacts the snapshot has built.
    pub artifacts: ArtifactStatus,
}

/// The answer to a [`Query`] (variants correspond one-to-one).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Query::Connectivity`].
    Connectivity {
        /// Whether the graph is connected.
        connected: bool,
        /// Number of connected components.
        num_components: usize,
    },
    /// Answer to [`Query::SameComponent`].
    SameComponent(bool),
    /// Answer to [`Query::Distance`].
    Distance(Option<u32>),
    /// Answer to [`Query::IsFar`].
    IsFar(bool),
    /// Answer to [`Query::CutEstimate`].
    CutEstimate(f64),
    /// Answer to [`Query::Stats`].
    Stats(GraphStats),
}

/// One unit of pool work: a query, its target graph, and the reply slot.
struct Job {
    graph: String,
    query: Query,
    reply: SyncSender<Result<Response, ServiceError>>,
    /// Submission time, captured only when the pool is instrumented —
    /// lets workers report **queue wait** separately from execution, so
    /// a saturated pool (wait grows, execute flat) is distinguishable
    /// from slow queries (execute grows).
    enqueued: Option<Instant>,
    /// Causal trace id minted at submit (0 when the pool's recorder is a
    /// no-op) — the worker installs it as the ambient id for the whole
    /// execution, so artifact builds and epoch work land in this query's
    /// chain.
    trace_id: u64,
}

/// A handle to one submitted query; [`wait`](QueryTicket::wait) blocks
/// for the answer.
#[derive(Debug)]
pub struct QueryTicket {
    reply: Option<Receiver<Result<Response, ServiceError>>>,
}

impl QueryTicket {
    /// Blocks until the pool answers.
    ///
    /// # Errors
    ///
    /// The query's own [`ServiceError`], or
    /// [`ServiceError::PoolShutDown`] if the pool died before answering.
    pub fn wait(self) -> Result<Response, ServiceError> {
        match self.reply {
            Some(rx) => rx.recv().unwrap_or(Err(ServiceError::PoolShutDown)),
            None => Err(ServiceError::PoolShutDown),
        }
    }
}

/// Incident window [`QueryService`]'s slow-query watchdog captures
/// around a flagged query: every event within the last 50 ms joins the
/// events sharing the query's trace id.
const INCIDENT_WINDOW_NANOS: u64 = 50_000_000;

/// A fixed pool of query-worker threads over a shared registry.
#[derive(Debug)]
pub struct QueryService {
    registry: Arc<GraphRegistry>,
    jobs: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    queue_wait: Histogram,
    tracer: FlightRecorder,
    /// Slow-query watchdog threshold in nanoseconds (`u64::MAX` = off).
    /// Shared with the workers so
    /// [`set_slow_query_threshold`](QueryService::set_slow_query_threshold)
    /// takes effect on in-flight pools.
    slow_nanos: Arc<AtomicU64>,
}

impl QueryService {
    /// Starts `workers` query threads over `registry`. The pool traces
    /// into the registry's [`FlightRecorder`] — no-op unless the registry
    /// was built with
    /// [`GraphRegistry::with_observability`](crate::GraphRegistry::with_observability).
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or a thread cannot be spawned.
    pub fn start(registry: Arc<GraphRegistry>, workers: usize) -> Self {
        assert!(workers > 0, "need at least one query worker");
        let telemetry = registry.telemetry();
        let queue_wait = telemetry.histogram("dsg_service_pool_queue_wait_nanos");
        let execute = telemetry.histogram("dsg_service_pool_execute_nanos");
        let tracer = registry.tracer().clone();
        // Captured once at pool start: install the auditor on the
        // registry *before* starting pools that should sample into it.
        let auditor = registry.auditor();
        let slow_nanos = Arc::new(AtomicU64::new(u64::MAX));
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let registry = Arc::clone(&registry);
                let queue_wait = queue_wait.clone();
                let execute = execute.clone();
                let tracer = tracer.clone();
                let auditor = auditor.clone();
                let slow_nanos = Arc::clone(&slow_nanos);
                std::thread::Builder::new()
                    .name(format!("dsg-query-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only while dequeuing, not
                        // while executing — workers run queries in parallel.
                        let job = match rx.lock().expect("job queue poisoned").recv() {
                            Ok(job) => job,
                            Err(_) => break,
                        };
                        if let Some(enqueued) = job.enqueued {
                            let wait = enqueued.elapsed();
                            queue_wait.record_duration(wait);
                            tracer.record(
                                EventKind::QueryDequeue,
                                job.trace_id,
                                0,
                                wait.as_nanos() as u64,
                            );
                        }
                        // Explicit timing (not `execute.time`) because the
                        // watchdog needs the elapsed value even when the
                        // execute histogram is a no-op.
                        let threshold = slow_nanos.load(Ordering::Relaxed);
                        let timed =
                            execute.is_active() || job.trace_id != 0 || threshold != u64::MAX;
                        let started = timed.then(Instant::now);
                        // Deterministic audit sampling: decided before
                        // execution so the sampled path can pin the
                        // answering snapshot for the shadow recompute.
                        let sampled = auditor.as_ref().filter(|a| a.should_sample(job.trace_id));
                        let mut audit_sample = None;
                        let result = {
                            let _scope = trace::scoped(job.trace_id);
                            match sampled {
                                None => registry.get(&job.graph).and_then(|g| g.query(&job.query)),
                                Some(_) => registry.get(&job.graph).and_then(|g| {
                                    let (snap, result) = g.query_pinned(&job.query);
                                    if let Ok(response) = &result {
                                        audit_sample = Some(AuditSample {
                                            graph: job.graph.clone(),
                                            trace_id: job.trace_id,
                                            query: job.query.clone(),
                                            response: response.clone(),
                                            snapshot: snap,
                                        });
                                    }
                                    result
                                }),
                            }
                        };
                        if let Some(started) = started {
                            let nanos = started.elapsed().as_nanos() as u64;
                            execute.record(nanos);
                            tracer.record(EventKind::QueryExecute, job.trace_id, 0, nanos);
                            if nanos >= threshold {
                                tracer.record(EventKind::SlowQuery, job.trace_id, 0, nanos);
                                tracer.capture_incident(
                                    job.trace_id,
                                    format!("{}:{}", job.graph, job.query.variant_label()),
                                    nanos,
                                    INCIDENT_WINDOW_NANOS,
                                );
                            }
                        }
                        // A dropped ticket is fine; the answer is discarded.
                        let _ = job.reply.send(result);
                        // Enqueue the audit sample only after the answer
                        // is out: auditing never delays the caller, and a
                        // full queue just counts an overflow.
                        if let (Some(auditor), Some(sample)) = (sampled, audit_sample) {
                            auditor.offer(sample);
                        }
                    })
                    .expect("failed to spawn query worker")
            })
            .collect();
        Self {
            registry,
            jobs: Some(tx),
            workers: handles,
            queue_wait,
            tracer,
            slow_nanos,
        }
    }

    /// Arms (or re-arms) the slow-query watchdog: any pool query whose
    /// execution exceeds `threshold` records a `SlowQuery` event and
    /// captures the surrounding event window as an
    /// [`Incident`](dsg_telemetry::Incident) on the registry's recorder.
    /// Effective immediately, including for in-flight pools.
    pub fn set_slow_query_threshold(&self, threshold: Duration) {
        self.slow_nanos
            .store(threshold.as_nanos() as u64, Ordering::Relaxed);
    }

    /// The registry this pool serves.
    pub fn registry(&self) -> &Arc<GraphRegistry> {
        &self.registry
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a query against `graph`; returns immediately with a
    /// ticket for the answer.
    pub fn submit(&self, graph: &str, query: Query) -> QueryTicket {
        let (reply_tx, reply_rx) = sync_channel(1);
        let trace_id = self.tracer.next_trace_id();
        self.tracer.record(
            EventKind::QuerySubmit,
            trace_id,
            0,
            query.variant_index() as u64,
        );
        let job = Job {
            graph: graph.to_string(),
            query,
            reply: reply_tx,
            enqueued: (self.queue_wait.is_active() || trace_id != 0).then(Instant::now),
            trace_id,
        };
        match &self.jobs {
            Some(tx) if tx.send(job).is_ok() => QueryTicket {
                reply: Some(reply_rx),
            },
            _ => QueryTicket { reply: None },
        }
    }

    /// Submits and waits — the one-call convenience path.
    ///
    /// # Errors
    ///
    /// Whatever the query execution produces, or
    /// [`ServiceError::PoolShutDown`].
    pub fn query_blocking(&self, graph: &str, query: Query) -> Result<Response, ServiceError> {
        self.submit(graph, query).wait()
    }

    /// Drains the queue and joins every worker.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        drop(self.jobs.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code may unwrap freely

    use super::*;
    use crate::GraphConfig;
    use dsg_graph::StreamUpdate;

    fn pool_with_path_graph(n: usize, workers: usize) -> QueryService {
        let registry = Arc::new(GraphRegistry::new());
        let g = registry.create("g", GraphConfig::new(n).seed(3)).unwrap();
        let updates: Vec<StreamUpdate> = (0..n as Vertex - 1)
            .map(|v| StreamUpdate::insert(v, v + 1))
            .collect();
        g.apply(&updates).unwrap();
        g.advance_epoch();
        QueryService::start(registry, workers)
    }

    #[test]
    fn pool_answers_queries() {
        let pool = pool_with_path_graph(10, 3);
        let r = pool.query_blocking("g", Query::Connectivity).unwrap();
        assert_eq!(
            r,
            Response::Connectivity {
                connected: true,
                num_components: 1
            }
        );
        let r = pool
            .query_blocking("g", Query::SameComponent(0, 9))
            .unwrap();
        assert_eq!(r, Response::SameComponent(true));
        let Response::Distance(Some(d)) = pool.query_blocking("g", Query::Distance(0, 9)).unwrap()
        else {
            panic!("path endpoints must be connected");
        };
        assert!((9..=9 * 4).contains(&(d as usize)), "stretch violated: {d}");
        pool.shutdown();
    }

    #[test]
    fn unknown_graph_is_an_error_not_a_hang() {
        let pool = pool_with_path_graph(6, 2);
        assert!(matches!(
            pool.query_blocking("nope", Query::Stats),
            Err(ServiceError::UnknownGraph(_))
        ));
    }

    #[test]
    fn many_concurrent_tickets_resolve() {
        let pool = pool_with_path_graph(12, 4);
        let tickets: Vec<QueryTicket> = (0..64)
            .map(|i| pool.submit("g", Query::SameComponent(i % 12, (i + 1) % 12)))
            .collect();
        for t in tickets {
            assert_eq!(t.wait().unwrap(), Response::SameComponent(true));
        }
    }

    #[test]
    fn submit_after_shutdown_reports_pool_down() {
        let registry = Arc::new(GraphRegistry::new());
        let mut pool = QueryService::start(registry, 1);
        pool.shutdown_in_place();
        assert!(matches!(
            pool.submit("g", Query::Stats).wait(),
            Err(ServiceError::PoolShutDown)
        ));
    }
}
