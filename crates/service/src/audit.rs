//! Online accuracy auditing: sampled shadow recomputes of served answers.
//!
//! Everything this service promises is probabilistic — the spanner oracle
//! answers within stretch `2^k` (Theorem 1), the KP12 sparsifier within
//! `(1 ± ε)` cuts (Corollary 2), the AGM forest is correct whp (Theorem
//! 10) — and the metrics and traces elsewhere in this workspace observe
//! *latency*, never *correctness*. The [`QualityAuditor`] closes that
//! gap: for a deterministically sampled fraction of served queries
//! (default 1 in [`AuditConfig::sample_every`], keyed on the query's
//! trace id so the same request is sampled on every replica), the exact
//! answer is recomputed **off the epoch's sealed [`NetMultiset`]
//! segment** and compared against what was served.
//!
//! The recompute is cheap *because of* the compaction work of earlier
//! PRs: the sealed net segment is O(live graph), not O(stream length),
//! so an exact BFS / union-find / Laplacian cut over
//! [`NetMultiset::final_graph`] costs one pass over current edges.
//!
//! Cost discipline mirrors the slow-query watchdog:
//!
//! * the query hot path only checks `trace_id % sample_every` and, for
//!   sampled queries, enqueues a `(trace id, query, response, snapshot)`
//!   sample into a **bounded** queue — overflow is counted and the
//!   sample dropped, the serving thread never blocks;
//! * a dedicated `dsg-audit` worker drains the queue and does all exact
//!   recomputation off the hot path;
//! * a guarantee violation records an
//!   [`EventKind::QualityViolation`] flight-recorder event and captures
//!   an incident window exactly like the watchdog, so `/tracez` and
//!   `/qualityz` tell one story.
//!
//! [`NetMultiset`]: dsg_graph::NetMultiset
//! [`NetMultiset::final_graph`]: dsg_graph::NetMultiset::final_graph

use crate::epoch::EpochSnapshot;
use crate::metrics::QUERY_VARIANTS;
use crate::query::{Query, Response};
use dsg_graph::bfs::{bfs_distances, UNREACHABLE};
use dsg_graph::components::connected_components;
use dsg_graph::Vertex;
use dsg_sketch::DistinctEstimator;
use dsg_sparsifier::Laplacian;
use dsg_telemetry::{
    series, Counter, EventKind, FlightRecorder, Histogram, HistogramSnapshot, MetricRegistry,
};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Incident window a quality violation captures, matching the slow-query
/// watchdog's so `/tracez` incidents look alike regardless of trigger.
const INCIDENT_WINDOW_NANOS: u64 = 50_000_000;

/// How many recent violations [`QualityAuditor::recent_violations`]
/// retains (oldest dropped first), mirroring the recorder's incident cap.
pub const MAX_RECENT_VIOLATIONS: usize = 32;

/// Tuning knobs of the [`QualityAuditor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditConfig {
    /// Audit one in this many served queries (deterministic on the trace
    /// id; `1` audits everything). Default 64.
    pub sample_every: u64,
    /// Bounded audit-queue capacity; a full queue counts an overflow and
    /// drops the sample rather than blocking the serving thread.
    pub queue_capacity: usize,
    /// Multiplicative sandwich a cut estimate must stay inside relative
    /// to the exact cut (`exact/slack ≤ est ≤ slack·exact`). The
    /// asymptotic contract is `(1 ± ε)`, but laptop-scale sparsifiers
    /// run far from the theorem's constants, so the audited bound is the
    /// loose factor the epoch tests already hold them to.
    pub cut_slack: f64,
    /// Relative slack allowed to the KNW distinct-edge estimator before
    /// its disagreement with the exact count is a violation.
    pub distinct_slack: f64,
}

impl Default for AuditConfig {
    fn default() -> Self {
        Self {
            sample_every: 64,
            queue_capacity: 256,
            cut_slack: 3.0,
            distinct_slack: 0.5,
        }
    }
}

/// One sampled serving decision, captured on the hot path and verified
/// on the audit worker. Holds the *answering* snapshot so an epoch
/// advance between serving and auditing cannot fake a violation.
#[derive(Debug)]
pub struct AuditSample {
    /// The served graph's registry name.
    pub graph: String,
    /// Trace id of the audited request (joins the causal chain).
    pub trace_id: u64,
    /// The query as served.
    pub query: Query,
    /// The answer that went out.
    pub response: Response,
    /// The epoch snapshot that answered.
    pub snapshot: Arc<EpochSnapshot>,
}

/// The verdict of one audited answer.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditFinding {
    /// Whether the served answer broke its guarantee.
    pub violation: bool,
    /// Observed deviation in parts per thousand: the stretch ratio above
    /// 1 for distances, the relative error for cuts and counts, and
    /// 0/1000 for boolean disagreements.
    pub error_permille: u64,
    /// Human-readable one-liner (what was served vs what is exact).
    pub detail: String,
}

/// Integer-only quality verdict (exact-equality friendly), carried by
/// `dsg_store::TenantRecovery` after the post-recovery self-audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QualityVerdict {
    /// Queries audited.
    pub samples: u64,
    /// Guarantee violations among them.
    pub violations: u64,
}

impl QualityVerdict {
    /// Whether every audited answer met its guarantee.
    pub fn clean(&self) -> bool {
        self.violations == 0
    }
}

/// Memoized exact-recompute artifacts for one epoch snapshot. The audit
/// worker keeps one per tenant: the first sample of an epoch pays the
/// `final_graph` materialization (O(live graph) thanks to compaction),
/// every later sample of the same epoch reuses it — component labels,
/// per-source exact BFS rows, the Laplacian, and the distinct-edge
/// verdict are each computed at most once per epoch. On a small host
/// this is what keeps the audit worker from competing with serving.
pub struct ExactCache {
    snap: Arc<EpochSnapshot>,
    graph: dsg_graph::Graph,
    adj: dsg_graph::graph::Adjacency,
    labels: Option<Vec<Vertex>>,
    rows: HashMap<Vertex, Vec<u32>>,
    laplacian: Option<Laplacian>,
    distinct: Option<AuditFinding>,
}

impl ExactCache {
    /// Materializes the exact graph for `snap`; everything else is lazy.
    pub fn new(snap: Arc<EpochSnapshot>) -> Self {
        let graph = snap.net_edges().final_graph();
        let adj = graph.adjacency();
        Self {
            snap,
            graph,
            adj,
            labels: None,
            rows: HashMap::new(),
            laplacian: None,
            distinct: None,
        }
    }

    /// Whether this cache was built from exactly `snap` (pointer
    /// identity: a republished equal epoch still invalidates).
    pub fn covers(&self, snap: &Arc<EpochSnapshot>) -> bool {
        Arc::ptr_eq(&self.snap, snap)
    }

    /// Smallest-vertex component labels of the exact graph.
    fn labels(&mut self) -> &[Vertex] {
        if self.labels.is_none() {
            self.labels = Some(connected_components(&self.graph));
        }
        self.labels.as_deref().unwrap_or_default()
    }

    /// Exact BFS distance row from `u`, memoized per source.
    fn row(&mut self, u: Vertex) -> &[u32] {
        self.rows
            .entry(u)
            .or_insert_with(|| bfs_distances(&self.adj, u))
    }

    fn laplacian(&mut self) -> &Laplacian {
        if self.laplacian.is_none() {
            self.laplacian = Some(Laplacian::from_graph(&self.graph));
        }
        self.laplacian
            .as_ref()
            .expect("laplacian was just inserted")
    }
}

/// Verifies one served answer against an exact recompute off the
/// snapshot's sealed net segment, memoizing shared work in `cache`
/// (which must cover the answering snapshot). Returns `None` only for
/// responses that do not correspond to the query variant (a
/// serving-layer bug worth surfacing loudly — the auditor counts it as
/// a violation itself).
pub fn verify_cached(
    cache: &mut ExactCache,
    query: &Query,
    response: &Response,
    cfg: &AuditConfig,
) -> Option<AuditFinding> {
    match (query, response) {
        (Query::Connectivity, Response::Connectivity { num_components, .. }) => {
            let exact = cache
                .labels()
                .iter()
                .enumerate()
                .filter(|&(i, &l)| l == i as Vertex)
                .count();
            Some(boolean_finding(
                *num_components == exact,
                format!("components: served {num_components}, exact {exact}"),
            ))
        }
        (Query::SameComponent(u, v), Response::SameComponent(served)) => {
            let labels = cache.labels();
            let exact = labels.get(*u as usize) == labels.get(*v as usize);
            Some(boolean_finding(
                *served == exact,
                format!("same_component({u},{v}): served {served}, exact {exact}"),
            ))
        }
        (Query::Distance(u, v), Response::Distance(served)) => {
            Some(verify_distance(cache, *u, *v, *served))
        }
        (Query::IsFar { u, v, threshold }, Response::IsFar(served)) => {
            Some(verify_is_far(cache, *u, *v, *threshold, *served))
        }
        (Query::CutEstimate(side), Response::CutEstimate(served)) => {
            Some(verify_cut(cache, side, *served, cfg))
        }
        (Query::Stats, Response::Stats(stats)) => {
            // The stats themselves are read off the snapshot; what the
            // audit adds is the distinct-edge cross-check: exact count
            // vs an independent KNW estimator over the same segment —
            // deterministic per epoch, so verified once and memoized.
            if stats.epoch != cache.snap.epoch()
                || stats.total_updates != cache.snap.total_updates()
            {
                return Some(AuditFinding {
                    violation: true,
                    error_permille: 1000,
                    detail: "stats disagree with their own snapshot".to_string(),
                });
            }
            if cache.distinct.is_none() {
                cache.distinct = Some(verify_distinct_edges(&cache.snap, cfg));
            }
            cache.distinct.clone()
        }
        _ => None,
    }
}

/// One-shot convenience over [`verify_cached`]: builds a throwaway
/// [`ExactCache`] for `snap`. Fine for single verifications; callers
/// with many samples per epoch (the audit worker, the store's
/// self-audit battery) keep a cache across calls instead.
pub fn verify_answer(
    snap: &Arc<EpochSnapshot>,
    query: &Query,
    response: &Response,
    cfg: &AuditConfig,
) -> Option<AuditFinding> {
    verify_cached(&mut ExactCache::new(Arc::clone(snap)), query, response, cfg)
}

fn boolean_finding(agree: bool, detail: String) -> AuditFinding {
    AuditFinding {
        violation: !agree,
        error_permille: if agree { 0 } else { 1000 },
        detail,
    }
}

/// The oracle contract is a sandwich: `exact ≤ served ≤ 2^k · exact`,
/// with reachability agreeing exactly (the spanner is a subgraph).
fn verify_distance(
    cache: &mut ExactCache,
    u: Vertex,
    v: Vertex,
    served: Option<u32>,
) -> AuditFinding {
    let stretch = 1u64 << cache.snap.config().spanner_k;
    let exact = cache.row(u).get(v as usize).copied().unwrap_or(UNREACHABLE);
    match (exact, served) {
        (UNREACHABLE, None) => AuditFinding {
            violation: false,
            error_permille: 0,
            detail: format!("distance({u},{v}): both unreachable"),
        },
        (UNREACHABLE, Some(est)) => AuditFinding {
            violation: true,
            error_permille: 1000,
            detail: format!("distance({u},{v}): served {est}, exactly unreachable"),
        },
        (d, None) => AuditFinding {
            violation: true,
            error_permille: 1000,
            detail: format!("distance({u},{v}): served unreachable, exactly {d}"),
        },
        (d, Some(est)) => {
            let violation = (est as u64) < d as u64 || est as u64 > stretch * d as u64;
            // Stretch above exact, in permille (0 when est == exact).
            let error_permille = if d == 0 {
                u64::from(est != 0) * 1000
            } else {
                ((est as u64 * 1000) / d as u64).saturating_sub(1000)
            };
            AuditFinding {
                violation,
                error_permille,
                detail: format!("distance({u},{v}): served {est}, exact {d}, stretch ≤ {stretch}"),
            }
        }
    }
}

/// `IsFar` inherits the oracle sandwich: a `false` implies
/// `exact ≤ threshold`; a `true` implies `2^k · exact > threshold` (the
/// estimate that exceeded the threshold is itself ≤ `2^k · exact`).
fn verify_is_far(
    cache: &mut ExactCache,
    u: Vertex,
    v: Vertex,
    threshold: u32,
    served: bool,
) -> AuditFinding {
    let stretch = 1u64 << cache.snap.config().spanner_k;
    let exact = cache.row(u).get(v as usize).copied().unwrap_or(UNREACHABLE);
    let ok = if served {
        exact == UNREACHABLE || stretch * exact as u64 > threshold as u64
    } else {
        exact != UNREACHABLE && exact as u64 <= threshold as u64
    };
    boolean_finding(
        ok,
        format!("is_far({u},{v},{threshold}): served {served}, exact distance {exact}"),
    )
}

fn verify_cut(
    cache: &mut ExactCache,
    side: &[Vertex],
    served: f64,
    cfg: &AuditConfig,
) -> AuditFinding {
    let mut in_side = vec![false; cache.graph.num_vertices()];
    for &v in side {
        if let Some(slot) = in_side.get_mut(v as usize) {
            *slot = true;
        }
    }
    let exact = cache.laplacian().cut_value(&in_side);
    let (violation, error_permille) = if exact <= f64::EPSILON {
        (served.abs() > 1e-6, (served.abs() * 1000.0) as u64)
    } else {
        let rel = (served - exact).abs() / exact;
        let out_of_sandwich =
            served > cfg.cut_slack * exact + 1e-9 || served < exact / cfg.cut_slack - 1e-9;
        (out_of_sandwich, (rel * 1000.0) as u64)
    };
    AuditFinding {
        violation,
        error_permille,
        detail: format!(
            "cut(|side|={}): served {served:.3}, exact {exact:.3}, slack ×{}",
            side.len(),
            cfg.cut_slack
        ),
    }
}

/// Exact distinct-edge count vs an independent KNW estimator fed the
/// same sealed segment — auditing the distinct-elements machinery the
/// sketches rely on (DESIGN.md § Distinct elements).
fn verify_distinct_edges(snap: &EpochSnapshot, cfg: &AuditConfig) -> AuditFinding {
    let net = snap.net_edges();
    let exact = net.num_edges() as u64;
    let n = net.num_vertices();
    let universe = dsg_graph::ids::num_pairs(n).max(2);
    let universe_bits = (64 - universe.leading_zeros()).max(1);
    let mut est = DistinctEstimator::new(universe_bits, 0.25, 9, snap.config().seed ^ 0xD15C);
    for e in net.entries() {
        est.update(e.edge.index(n), i128::from(e.multiplicity));
    }
    match est.estimate() {
        Ok(approx) => {
            let err = approx.abs_diff(exact);
            // Small supports decode exactly; slack only matters at scale.
            let allowed = ((exact as f64) * cfg.distinct_slack) as u64 + 4;
            AuditFinding {
                violation: err > allowed,
                error_permille: (err * 1000).checked_div(exact).unwrap_or(approx * 1000),
                detail: format!("distinct edges: estimator {approx}, exact {exact}"),
            }
        }
        Err(e) => AuditFinding {
            violation: true,
            error_permille: 1000,
            detail: format!("distinct edges: estimator failed to decode ({e:?})"),
        },
    }
}

/// One forced audit pass over a snapshot: a deterministic battery that
/// exercises the forest, the distance oracle, and the distinct-edge
/// estimator and verifies each answer exactly. This is what `dsg-store`
/// runs post-recovery so every `TenantRecovery` carries a
/// [`QualityVerdict`]. Cut estimates are deliberately left out: they
/// would force the KP12 sparsifier build — the single most expensive
/// artifact — into every recovery, and the cut guarantee is already
/// audited online by the sampled shadow path.
pub fn self_audit(snap: &Arc<EpochSnapshot>) -> QualityVerdict {
    let n = snap.num_vertices() as Vertex;
    let far = n.saturating_sub(1);
    let battery = [
        Query::Connectivity,
        Query::SameComponent(0, far),
        Query::Distance(0, far),
        Query::IsFar {
            u: 0,
            v: far,
            threshold: 2,
        },
        Query::Stats,
    ];
    let cfg = AuditConfig::default();
    let mut cache = ExactCache::new(Arc::clone(snap));
    let mut verdict = QualityVerdict::default();
    for query in battery {
        let Ok(response) = snap.execute(&query) else {
            continue;
        };
        if let Some(finding) = verify_cached(&mut cache, &query, &response, &cfg) {
            verdict.samples += 1;
            verdict.violations += u64::from(finding.violation);
        }
    }
    verdict
}

/// One recent guarantee violation, as `/qualityz` reports it.
#[derive(Debug, Clone, PartialEq)]
pub struct ViolationRecord {
    /// The offending tenant.
    pub graph: String,
    /// Query-class label (see [`Query::variant_label`]).
    pub query: &'static str,
    /// Trace id of the audited request.
    pub trace_id: u64,
    /// Observed deviation, parts per thousand.
    pub error_permille: u64,
    /// The finding's one-liner.
    pub detail: String,
}

/// Always-on internal tally for one (tenant, query-class) cell — kept
/// separately from the `MetricRegistry` mirrors so `/qualityz` works
/// even on a no-op registry.
#[derive(Debug)]
struct ClassStats {
    samples: u64,
    violations: u64,
    errors: Histogram,
}

impl Default for ClassStats {
    fn default() -> Self {
        Self {
            samples: 0,
            violations: 0,
            errors: Histogram::active(),
        }
    }
}

/// Registry-mirrored handles for one tenant, resolved once per tenant on
/// the audit worker (cold path — one name-map lookup per new tenant).
struct TenantHandles {
    samples: [Counter; 6],
    violations: [Counter; 6],
    errors: [Histogram; 6],
    tenant_token: u32,
}

/// State shared between the auditor handle and its worker thread.
struct AuditCore {
    cfg: AuditConfig,
    queue: Mutex<VecDeque<AuditSample>>,
    /// Signalled on enqueue and on shutdown.
    work_ready: Condvar,
    /// Signalled whenever the worker drains the queue to empty.
    drained: Condvar,
    /// Worker busy flag, under the queue lock's discipline: set before
    /// releasing the lock to verify, cleared after stats are recorded.
    busy: Mutex<bool>,
    stop: AtomicBool,
    tracer: FlightRecorder,
    telemetry: Arc<MetricRegistry>,
    /// Fallback sampling clock for untraced queries (trace id 0).
    untraced: AtomicU64,
    enqueued: AtomicU64,
    audited: AtomicU64,
    overflow: AtomicU64,
    overflow_counter: Counter,
    audited_counter: Counter,
    stats: Mutex<BTreeMap<String, [ClassStats; 6]>>,
    recent: Mutex<VecDeque<ViolationRecord>>,
}

/// The sampled shadow-verification subsystem. Create one per registry
/// with [`crate::GraphRegistry::install_auditor`] **before** starting
/// query pools; serving threads then hand sampled answers to
/// [`offer`](QualityAuditor::offer) and the `dsg-audit` worker verifies
/// them off the hot path.
pub struct QualityAuditor {
    core: Arc<AuditCore>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for QualityAuditor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QualityAuditor")
            .field("cfg", &self.core.cfg)
            .finish()
    }
}

impl QualityAuditor {
    /// Starts the audit worker. `telemetry` receives the per-tenant
    /// mirror series (`dsg_audit_*`); `tracer` receives
    /// `quality_violation` events and incident captures.
    pub fn start(
        telemetry: Arc<MetricRegistry>,
        tracer: FlightRecorder,
        cfg: AuditConfig,
    ) -> Arc<Self> {
        let overflow_counter = telemetry.counter("dsg_audit_enqueue_overflow_total");
        let audited_counter = telemetry.counter("dsg_audit_audited_total");
        let core = Arc::new(AuditCore {
            cfg,
            queue: Mutex::new(VecDeque::with_capacity(cfg.queue_capacity.min(1024))),
            work_ready: Condvar::new(),
            drained: Condvar::new(),
            busy: Mutex::new(false),
            stop: AtomicBool::new(false),
            tracer,
            telemetry,
            untraced: AtomicU64::new(0),
            enqueued: AtomicU64::new(0),
            audited: AtomicU64::new(0),
            overflow: AtomicU64::new(0),
            overflow_counter,
            audited_counter,
            stats: Mutex::new(BTreeMap::new()),
            recent: Mutex::new(VecDeque::new()),
        });
        let worker_core = Arc::clone(&core);
        let worker = std::thread::Builder::new()
            .name("dsg-audit".to_string())
            .spawn(move || worker_loop(&worker_core))
            .expect("failed to spawn audit worker");
        Arc::new(Self {
            core,
            worker: Mutex::new(Some(worker)),
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &AuditConfig {
        &self.core.cfg
    }

    /// Deterministic per-trace-id sampling: every replica that sees the
    /// same trace id makes the same call. Untraced queries (id 0, i.e. a
    /// no-op recorder) fall back to a local modulo clock so the sample
    /// rate holds either way.
    #[inline]
    pub fn should_sample(&self, trace_id: u64) -> bool {
        let every = self.core.cfg.sample_every;
        if every <= 1 {
            return true;
        }
        if trace_id != 0 {
            trace_id % every == 0
        } else {
            self.core.untraced.fetch_add(1, Ordering::Relaxed) % every == 0
        }
    }

    /// Hands a sampled serving decision to the audit worker. Never
    /// blocks: a full queue counts an overflow and drops the sample.
    /// Returns whether the sample was accepted.
    pub fn offer(&self, sample: AuditSample) -> bool {
        let mut queue = self.core.queue.lock().expect("audit queue poisoned");
        if queue.len() >= self.core.cfg.queue_capacity {
            drop(queue);
            self.core.overflow.fetch_add(1, Ordering::Relaxed);
            self.core.overflow_counter.inc();
            return false;
        }
        queue.push_back(sample);
        drop(queue);
        self.core.enqueued.fetch_add(1, Ordering::Relaxed);
        // Deliberately no wakeup: the worker polls on a short timeout
        // (see `worker_loop`), so the hot path never pays a futex wake —
        // on small hosts the context switches cost more than the audits.
        true
    }

    /// Blocks until every queued sample has been verified — the barrier
    /// tests and experiments use before asserting on audit state.
    pub fn flush(&self) {
        let mut queue = self.core.queue.lock().expect("audit queue poisoned");
        loop {
            let busy = *self.core.busy.lock().expect("audit busy flag poisoned");
            if (queue.is_empty() && !busy) || self.core.stop.load(Ordering::Relaxed) {
                return;
            }
            queue = self.core.drained.wait(queue).expect("audit queue poisoned");
        }
    }

    /// Samples offered so far (accepted into the queue).
    pub fn enqueued(&self) -> u64 {
        self.core.enqueued.load(Ordering::Relaxed)
    }

    /// Samples fully verified so far.
    pub fn audited(&self) -> u64 {
        self.core.audited.load(Ordering::Relaxed)
    }

    /// Samples dropped because the queue was full.
    pub fn overflow(&self) -> u64 {
        self.core.overflow.load(Ordering::Relaxed)
    }

    /// Total guarantee violations across all tenants.
    pub fn total_violations(&self) -> u64 {
        let stats = self.core.stats.lock().expect("audit stats poisoned");
        stats
            .values()
            .flat_map(|classes| classes.iter())
            .map(|c| c.violations)
            .sum()
    }

    /// The per-tenant verdict so far.
    pub fn verdict(&self, graph: &str) -> QualityVerdict {
        let stats = self.core.stats.lock().expect("audit stats poisoned");
        match stats.get(graph) {
            Some(classes) => QualityVerdict {
                samples: classes.iter().map(|c| c.samples).sum(),
                violations: classes.iter().map(|c| c.violations).sum(),
            },
            None => QualityVerdict::default(),
        }
    }

    /// The most recent violations, oldest first (bounded by
    /// [`MAX_RECENT_VIOLATIONS`]).
    pub fn recent_violations(&self) -> Vec<ViolationRecord> {
        self.core
            .recent
            .lock()
            .expect("audit recent poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Renders the `/qualityz` JSON document: global counters, then
    /// per-tenant per-class sample counts, violation counts, and error
    /// quantiles (permille), then the recent-violation ring.
    pub fn render_qualityz(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(&format!(
            "{{\"enabled\":true,\"sample_every\":{},\"queue_capacity\":{},\
             \"enqueued\":{},\"audited\":{},\"overflow\":{},\"tenants\":[",
            self.core.cfg.sample_every,
            self.core.cfg.queue_capacity,
            self.enqueued(),
            self.audited(),
            self.overflow(),
        ));
        {
            let stats = self.core.stats.lock().expect("audit stats poisoned");
            for (i, (graph, classes)) in stats.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let samples: u64 = classes.iter().map(|c| c.samples).sum();
                let violations: u64 = classes.iter().map(|c| c.violations).sum();
                out.push_str(&format!(
                    "{{\"graph\":{},\"samples\":{samples},\"violations\":{violations},\
                     \"classes\":[",
                    crate::admin::json_escape(graph)
                ));
                let mut first = true;
                for (idx, class) in classes.iter().enumerate() {
                    if class.samples == 0 {
                        continue;
                    }
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    let h: HistogramSnapshot = class.errors.snapshot_value();
                    out.push_str(&format!(
                        "{{\"query\":\"{}\",\"samples\":{},\"violations\":{},\
                         \"error_p50_permille\":{},\"error_p95_permille\":{},\
                         \"error_max_permille\":{}}}",
                        QUERY_VARIANTS[idx],
                        class.samples,
                        class.violations,
                        h.p50(),
                        h.p95(),
                        class.errors.max(),
                    ));
                }
                out.push_str("]}");
            }
        }
        out.push_str("],\"violations\":[");
        for (i, v) in self.recent_violations().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"graph\":{},\"query\":\"{}\",\"trace_id\":{},\"error_permille\":{},\
                 \"detail\":{}}}",
                crate::admin::json_escape(&v.graph),
                v.query,
                v.trace_id,
                v.error_permille,
                crate::admin::json_escape(&v.detail),
            ));
        }
        out.push_str("]}\n");
        out
    }

    /// Stops the worker and joins it. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        self.core.stop.store(true, Ordering::Relaxed);
        self.core.work_ready.notify_all();
        self.core.drained.notify_all();
        if let Some(handle) = self.worker.lock().expect("audit worker poisoned").take() {
            let _ = handle.join();
        }
        self.core.drained.notify_all();
    }
}

impl Drop for QualityAuditor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The `/qualityz` body when no auditor is installed.
pub(crate) const QUALITYZ_DISABLED: &str = "{\"enabled\":false,\"tenants\":[],\"violations\":[]}\n";

fn worker_loop(core: &Arc<AuditCore>) {
    let mut handles: HashMap<String, TenantHandles> = HashMap::new();
    // One exact-recompute cache per tenant, invalidated on epoch change.
    let mut caches: HashMap<String, ExactCache> = HashMap::new();
    loop {
        let sample = {
            let mut queue = core.queue.lock().expect("audit queue poisoned");
            loop {
                if let Some(sample) = queue.pop_front() {
                    *core.busy.lock().expect("audit busy flag poisoned") = true;
                    break sample;
                }
                if core.stop.load(Ordering::Relaxed) {
                    return;
                }
                core.drained.notify_all();
                // Poll rather than demand a wakeup from `offer` — see
                // there. 2 ms of audit lag is invisible; a futex wake
                // per sampled query is not.
                queue = core
                    .work_ready
                    .wait_timeout(queue, std::time::Duration::from_millis(2))
                    .expect("audit queue poisoned")
                    .0;
            }
        };
        audit_one(core, &mut handles, &mut caches, &sample);
        *core.busy.lock().expect("audit busy flag poisoned") = false;
        core.audited.fetch_add(1, Ordering::Relaxed);
        core.audited_counter.inc();
        if core.queue.lock().expect("audit queue poisoned").is_empty() {
            core.drained.notify_all();
        }
    }
}

/// Verifies one sample and records every outcome surface: internal
/// stats, registry mirrors, and — on violation — the flight recorder
/// event + incident capture and the recent-violation ring.
fn audit_one(
    core: &Arc<AuditCore>,
    handles: &mut HashMap<String, TenantHandles>,
    caches: &mut HashMap<String, ExactCache>,
    sample: &AuditSample,
) {
    let fresh = caches
        .get(&sample.graph)
        .is_some_and(|c| c.covers(&sample.snapshot));
    if !fresh {
        caches.insert(
            sample.graph.clone(),
            ExactCache::new(Arc::clone(&sample.snapshot)),
        );
    }
    let cache = caches.get_mut(&sample.graph).expect("cache inserted above");
    let finding =
        verify_cached(cache, &sample.query, &sample.response, &core.cfg).unwrap_or_else(|| {
            AuditFinding {
                violation: true,
                error_permille: 1000,
                detail: "response variant does not match its query".to_string(),
            }
        });
    let idx = sample.query.variant_index();

    let tenant = handles.entry(sample.graph.clone()).or_insert_with(|| {
        let g = sample.graph.as_str();
        let per_class = |name: &str| -> [Counter; 6] {
            QUERY_VARIANTS.map(|q| {
                core.telemetry
                    .counter(&series(name, &[("graph", g), ("query", q)]))
            })
        };
        TenantHandles {
            samples: per_class("dsg_audit_samples_total"),
            violations: per_class("dsg_audit_violations_total"),
            errors: QUERY_VARIANTS.map(|q| {
                core.telemetry.histogram(&series(
                    "dsg_audit_error_permille",
                    &[("graph", g), ("query", q)],
                ))
            }),
            tenant_token: core.tracer.intern(g),
        }
    });
    tenant.samples[idx].inc();
    tenant.errors[idx].record(finding.error_permille);
    if finding.violation {
        tenant.violations[idx].inc();
        core.tracer.record(
            EventKind::QualityViolation,
            sample.trace_id,
            tenant.tenant_token,
            idx as u64,
        );
        core.tracer.capture_incident(
            sample.trace_id,
            format!("{}:{}:quality", sample.graph, sample.query.variant_label()),
            finding.error_permille,
            INCIDENT_WINDOW_NANOS,
        );
    }
    {
        let mut stats = core.stats.lock().expect("audit stats poisoned");
        let classes = stats.entry(sample.graph.clone()).or_default();
        classes[idx].samples += 1;
        classes[idx].violations += u64::from(finding.violation);
        classes[idx].errors.record(finding.error_permille);
    }
    if finding.violation {
        let mut recent = core.recent.lock().expect("audit recent poisoned");
        if recent.len() >= MAX_RECENT_VIOLATIONS {
            recent.pop_front();
        }
        recent.push_back(ViolationRecord {
            graph: sample.graph.clone(),
            query: sample.query.variant_label(),
            trace_id: sample.trace_id,
            error_permille: finding.error_permille,
            detail: finding.detail,
        });
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code may unwrap freely

    use super::*;
    use crate::{GraphConfig, GraphRegistry, QueryService};
    use dsg_graph::StreamUpdate;

    fn registry_with_path(n: usize) -> Arc<GraphRegistry> {
        let registry = Arc::new(GraphRegistry::with_observability(
            Arc::new(MetricRegistry::new()),
            FlightRecorder::with_capacity(4096),
        ));
        let g = registry
            .create("g", GraphConfig::new(n).seed(5).shards(2))
            .unwrap();
        let updates: Vec<StreamUpdate> = (0..n as Vertex - 1)
            .map(|v| StreamUpdate::insert(v, v + 1))
            .collect();
        g.apply(&updates).unwrap();
        g.advance_epoch();
        registry
    }

    #[test]
    fn honest_answers_audit_clean() {
        let registry = registry_with_path(24);
        let snap = registry.get("g").unwrap().snapshot();
        let verdict = self_audit(&snap);
        assert!(verdict.samples >= 5, "battery must run: {verdict:?}");
        assert!(verdict.clean(), "honest snapshot must audit clean");
    }

    #[test]
    fn wrong_answers_are_violations() {
        let registry = registry_with_path(16);
        let snap = registry.get("g").unwrap().snapshot();
        let cfg = AuditConfig::default();
        // Wrong connectivity: the path has exactly one component.
        let f = verify_answer(
            &snap,
            &Query::Connectivity,
            &Response::Connectivity {
                connected: false,
                num_components: 3,
            },
            &cfg,
        )
        .unwrap();
        assert!(f.violation);
        // Underestimated distance breaks the subgraph lower bound.
        let f = verify_answer(
            &snap,
            &Query::Distance(0, 15),
            &Response::Distance(Some(1)),
            &cfg,
        )
        .unwrap();
        assert!(f.violation, "{f:?}");
        // A sane distance passes.
        let f = verify_answer(
            &snap,
            &Query::Distance(0, 15),
            &Response::Distance(Some(15)),
            &cfg,
        )
        .unwrap();
        assert!(!f.violation, "{f:?}");
        assert_eq!(f.error_permille, 0);
        // Absurd cut value trips the sandwich.
        let f = verify_answer(
            &snap,
            &Query::CutEstimate(vec![0, 1, 2]),
            &Response::CutEstimate(900.0),
            &cfg,
        )
        .unwrap();
        assert!(f.violation, "{f:?}");
    }

    #[test]
    fn sampling_is_deterministic_and_rate_correct() {
        let auditor = QualityAuditor::start(
            Arc::new(MetricRegistry::noop()),
            FlightRecorder::noop(),
            AuditConfig {
                sample_every: 8,
                ..AuditConfig::default()
            },
        );
        let sampled: Vec<u64> = (1..=64).filter(|&id| auditor.should_sample(id)).collect();
        assert_eq!(sampled, vec![8, 16, 24, 32, 40, 48, 56, 64]);
        // Untraced queries fall back to the local clock at the same rate.
        let untraced = (0..64).filter(|_| auditor.should_sample(0)).count();
        assert_eq!(untraced, 8);
        auditor.shutdown();
    }

    #[test]
    fn queue_is_bounded_and_overflow_counted() {
        let registry = registry_with_path(8);
        let snap = registry.get("g").unwrap().snapshot();
        let auditor = QualityAuditor::start(
            Arc::new(MetricRegistry::noop()),
            FlightRecorder::noop(),
            AuditConfig {
                sample_every: 1,
                queue_capacity: 2,
                ..AuditConfig::default()
            },
        );
        // Stall the worker by never letting it win the race: shut it
        // down first so offers pile up deterministically.
        auditor.core.stop.store(true, Ordering::Relaxed);
        auditor.core.work_ready.notify_all();
        if let Some(h) = auditor.worker.lock().unwrap().take() {
            h.join().unwrap();
        }
        let mk = || AuditSample {
            graph: "g".to_string(),
            trace_id: 1,
            query: Query::Connectivity,
            response: Response::Connectivity {
                connected: true,
                num_components: 1,
            },
            snapshot: Arc::clone(&snap),
        };
        assert!(auditor.offer(mk()));
        assert!(auditor.offer(mk()));
        assert!(!auditor.offer(mk()), "third offer must overflow");
        assert_eq!(auditor.overflow(), 1);
        assert_eq!(auditor.enqueued(), 2);
    }

    #[test]
    fn end_to_end_violation_is_recorded_and_rendered() {
        let registry = registry_with_path(16);
        let auditor = registry.install_auditor(AuditConfig {
            sample_every: 1,
            ..AuditConfig::default()
        });
        let g = registry.get("g").unwrap();
        // Sabotage the oracle: a row of zeros serves distance 0 for
        // every target, below the exact distance — a guarantee breach.
        g.snapshot().oracle().poison_cached_row(0, vec![0; 16]);
        let pool = QueryService::start(Arc::clone(&registry), 2);
        for _ in 0..4 {
            pool.query_blocking("g", Query::Distance(0, 12)).unwrap();
        }
        pool.shutdown();
        auditor.flush();
        assert!(auditor.total_violations() >= 1, "sabotage must be caught");
        let verdict = auditor.verdict("g");
        assert!(verdict.samples >= 1 && verdict.violations >= 1);
        let recent = auditor.recent_violations();
        assert!(!recent.is_empty());
        assert_eq!(recent[0].graph, "g");
        assert_eq!(recent[0].query, "distance");
        // The violation reached the flight recorder as an event and an
        // incident labelled like the watchdog's.
        let events = registry.tracer().dump();
        assert!(events.iter().any(|e| e.kind == EventKind::QualityViolation));
        let incidents = registry.tracer().incidents();
        assert!(incidents.iter().any(|i| i.label == "g:distance:quality"));
        // The registry mirrors carry the same counts.
        let snap = registry.telemetry().snapshot();
        let series_name = "dsg_audit_violations_total{graph=\"g\",query=\"distance\"}";
        assert!(snap.counter(series_name).unwrap() >= 1);
        // And the JSON document renders it all, parseably.
        let doc = dsg_util::json::parse(&auditor.render_qualityz()).unwrap();
        assert_eq!(
            doc.get("enabled")
                .and_then(dsg_util::json::JsonValue::as_bool),
            Some(true)
        );
        let tenants = doc
            .get("tenants")
            .and_then(dsg_util::json::JsonValue::as_array)
            .unwrap();
        assert_eq!(tenants.len(), 1);
        let violations = doc
            .get("violations")
            .and_then(dsg_util::json::JsonValue::as_array)
            .unwrap();
        assert!(!violations.is_empty());
    }
}
