//! The multi-tenant graph registry and the per-graph serving state.
//!
//! A [`ServedGraph`] pairs a live sharded ingest engine with the most
//! recently published [`EpochSnapshot`]. Writers append updates under the
//! ingest lock; readers clone an `Arc` of the current snapshot and never
//! contend with ingest. [`ServedGraph::advance_epoch`] is the only bridge
//! between the two sides: it forks every shard's state between batches
//! (workers keep running), merges the forks, and publishes the result.
//!
//! The update log is kept **compacted and sharded**
//! ([`ShardedCompactedLog`]): updates route to a per-shard
//! net-multiplicity map with the same hash the engine routes them to a
//! worker, insertions and deletions of the same pair cancel at ingest,
//! and writer-side state is O(current edges) — never O(stream length).
//! Advancing an epoch seals one net segment per shard and assembles the
//! epoch segment by concatenating them (disjoint by routing). Multi-pass
//! epoch artifacts rebuild from the assembled segment, bit-identically to
//! a raw-log replay, by pass linearity.

use crate::audit::{AuditConfig, QualityAuditor};
use crate::compact::ShardedCompactedLog;
use crate::epoch::EpochSnapshot;
use crate::metrics::GraphMetrics;
use crate::query::{Query, Response};
use crate::{GraphConfig, ServiceError};
use dsg_agm::AgmSketch;
use dsg_engine::{merge_tree, reduce_snapshots, EdgeUpdate, EngineConfig, ShardedEngine};
use dsg_graph::{NetMultiset, StreamUpdate, Vertex};
use dsg_sketch::wire;
use dsg_telemetry::{trace, EventKind, FlightRecorder, MetricRegistry, MetricsSnapshot};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

/// Writer-side state: the live engine plus the sharded compacted log,
/// partitioned by the same routing function.
struct IngestState {
    engine: ShardedEngine<AgmSketch>,
    live: ShardedCompactedLog,
}

/// Everything a durability layer must persist to bring a [`ServedGraph`]
/// back bit-identically after a crash: the per-shard sketches and the
/// compacted net edge segment, captured **atomically at an epoch
/// boundary** by
/// [`ServedGraph::checkpoint_state`] and turned back into a live graph by
/// [`GraphRegistry::restore`]. By linearity, a graph restored from this
/// state and fed the remaining stream answers exactly like one that never
/// stopped — `dsg-store` builds its checkpoint files around this struct.
#[derive(Debug, Clone)]
pub struct PersistedGraph {
    /// The epoch counter at the capture point (capture advances an epoch,
    /// so this is also the epoch of the published snapshot).
    pub epoch: u64,
    /// Updates ingested up to the capture point.
    pub total_updates: u64,
    /// One [`PersistedShard`] per engine shard, in shard order: the
    /// worker's true capture-point sketch next to its sealed net segment.
    /// With hash-partitioned routing the raw forks **are** canonical —
    /// shard `i`'s sketch is a deterministic function of the net
    /// sub-stream of the edges `shard_for` assigns it, bounded by the
    /// live subgraph the shard owns, no matter how much churn flowed
    /// through. (The previous round-robin engine needed a "canonical
    /// factorization" workaround here — merged summary in shard 0, zero
    /// sketches elsewhere — because raw round-robin forks grew with churn
    /// residue. Edge partitioning made that workaround unnecessary and it
    /// has been deleted.)
    pub shards: Vec<PersistedShard>,
}

/// One engine shard's persisted state: its capture-point sketch and the
/// sealed net segment of the edges it owns. The two sides are views of
/// the same sub-stream — the sketch is what the worker resumes ingest
/// from, the segment is what re-seeds its compacted log and, concatenated
/// across shards, rebuilds the epoch's multi-pass artifacts.
#[derive(Debug, Clone)]
pub struct PersistedShard {
    /// The shard worker's sketch at the capture point.
    pub sketch: AgmSketch,
    /// The sealed net segment of the edges this shard owns.
    pub net: NetMultiset,
}

impl PersistedGraph {
    /// Assembles the epoch-wide net segment by concatenating the
    /// (disjoint, routing-partitioned) shard segments.
    ///
    /// # Panics
    ///
    /// Panics if the shard segments are not disjoint or disagree on the
    /// vertex count — persisted state from a correct capture always is.
    pub fn epoch_net(&self) -> NetMultiset {
        let n = self
            .shards
            .first()
            .expect("persisted graph has at least one shard")
            .net
            .num_vertices();
        NetMultiset::merge_disjoint(n, self.shards.iter().map(|s| &s.net))
    }
}

/// Folds shard forks into one sketch while cloning only the first —
/// linear merges take `&other`, so the remaining forks merge by
/// reference instead of duplicating the whole shard fleet. Bit-identical
/// to any other merge order by linearity (counter addition commutes).
fn merge_forks(forks: &[AgmSketch]) -> AgmSketch {
    let (first, rest) = forks.split_first().expect("engine has at least one shard");
    let mut merged = first.clone();
    for fork in rest {
        dsg_sketch::LinearSketch::merge(&mut merged, fork);
    }
    merged
}

/// One tenant graph: a live ingest engine plus the current epoch snapshot.
pub struct ServedGraph {
    name: String,
    config: GraphConfig,
    ingest: Mutex<IngestState>,
    current: RwLock<Arc<EpochSnapshot>>,
    metrics: GraphMetrics,
    telemetry: Arc<MetricRegistry>,
}

impl std::fmt::Debug for ServedGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServedGraph")
            .field("name", &self.name)
            .field("config", &self.config)
            .field("epoch", &self.snapshot().epoch())
            .finish_non_exhaustive()
    }
}

impl ServedGraph {
    fn new(
        name: String,
        config: GraphConfig,
        telemetry: Arc<MetricRegistry>,
        tracer: &FlightRecorder,
    ) -> Self {
        let (n, seed) = (config.n, config.seed);
        let metrics = GraphMetrics::for_graph(&telemetry, tracer, &name, config.shards);
        let engine_cfg = EngineConfig::new(config.shards).batch_size(config.batch_size);
        let mut engine = ShardedEngine::start(engine_cfg, |_| AgmSketch::new(n, seed));
        engine.set_metrics(metrics.engine.clone());
        let epoch0 = EpochSnapshot::new(
            0,
            config,
            AgmSketch::new(n, seed),
            Arc::new(NetMultiset::empty(n)),
            0,
            metrics.artifacts.clone(),
        );
        Self {
            name,
            config,
            ingest: Mutex::new(IngestState {
                engine,
                live: ShardedCompactedLog::new(n, config.shards),
            }),
            current: RwLock::new(Arc::new(epoch0)),
            metrics,
            telemetry,
        }
    }

    /// The registry name of this graph.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The graph's configuration.
    pub fn config(&self) -> &GraphConfig {
        &self.config
    }

    /// Appends a batch of stream updates to the live engine (and the
    /// compacted log). Returns the total updates ingested so far.
    ///
    /// # Errors
    ///
    /// [`ServiceError::VertexOutOfRange`] if any update names a vertex
    /// outside `[0, n)`, [`ServiceError::InvalidDelta`] for a delta
    /// outside ±1, [`ServiceError::NegativeMultiplicity`] if a deletion
    /// would drive some pair's net multiplicity below zero (the
    /// dynamic-stream model's own precondition, and the ground on which
    /// the compacted log may cancel updates). The whole batch is rejected
    /// before any of it is applied, so a bad batch never half-lands.
    pub fn apply(&self, updates: &[StreamUpdate]) -> Result<u64, ServiceError> {
        self.apply_logged(updates, || Ok(()))
    }

    /// Like [`apply`](ServedGraph::apply), but runs `log` between
    /// validation and the in-memory apply, **all under one ingest-lock
    /// hold** — the hook a durability layer uses for its WAL append.
    /// Because validation, `log`, and the apply share the critical
    /// section, the state that was validated is exactly the state the
    /// batch lands on: no concurrent writer (not even one bypassing
    /// durability through a raw [`ServedGraph`] handle) can interleave a
    /// mutation that would make memory refuse a batch the log already
    /// acknowledged. If `log` fails, nothing lands.
    ///
    /// # Errors
    ///
    /// As [`apply`](ServedGraph::apply), through `E: From<ServiceError>`,
    /// plus whatever `log` returns.
    pub fn apply_logged<E, F>(&self, updates: &[StreamUpdate], log: F) -> Result<u64, E>
    where
        E: From<ServiceError>,
        F: FnOnce() -> Result<(), E>,
    {
        let n = self.config.n;
        self.check_vertices(updates).map_err(E::from)?;
        let mut st = self.ingest.lock().expect("ingest lock poisoned");
        st.live.check_batch(updates).map_err(E::from)?;
        log()?;
        for up in updates {
            st.engine
                .push(EdgeUpdate::new(up.edge.index(n), up.delta as i128));
            let shard = st.live.apply(up);
            // A validated deletion always annihilates one prior insertion
            // in the owning shard's net map — count it as a cancellation.
            if up.delta < 0 {
                if let Some(cancelled) = self.metrics.cancellations.get(shard) {
                    cancelled.inc();
                }
            }
        }
        // One trace event per *batch* (never per update), under the
        // caller's ambient trace id — a WAL-backed apply shares the id
        // its durable layer installed.
        self.metrics.tracer.record(
            EventKind::IngestBatch,
            trace::current_trace_id(),
            self.metrics.tenant,
            updates.len() as u64,
        );
        Ok(st.engine.pushed())
    }

    /// The shared stateless range check of every batch entry point.
    fn check_vertices(&self, updates: &[StreamUpdate]) -> Result<(), ServiceError> {
        let n = self.config.n;
        for up in updates {
            let big = up.edge.v(); // canonical order: v is the larger endpoint
            if big as usize >= n {
                return Err(ServiceError::VertexOutOfRange { vertex: big, n });
            }
        }
        Ok(())
    }

    /// Convenience: applies one edge insertion.
    pub fn insert(&self, u: Vertex, v: Vertex) -> Result<u64, ServiceError> {
        self.apply(&[StreamUpdate::insert(u, v)])
    }

    /// Convenience: applies one edge deletion.
    pub fn delete(&self, u: Vertex, v: Vertex) -> Result<u64, ServiceError> {
        self.apply(&[StreamUpdate::delete(u, v)])
    }

    /// Freezes the current stream position into a new immutable epoch and
    /// publishes it, while the shard workers keep running. In-memory
    /// merge path ([`merge_tree`] over the shard forks).
    pub fn advance_epoch(&self) -> Arc<EpochSnapshot> {
        self.advance_with(|forks| merge_tree(forks).expect("engine has at least one shard"))
    }

    /// Like [`advance_epoch`](ServedGraph::advance_epoch), but routes
    /// every shard fork through its **wire snapshot**: serialize, cheap
    /// header validation ([`wire::peek_kind`] — kind and version), then
    /// checksum-verified decode and merge. This is the path a
    /// multi-server deployment exercises, where shard snapshots arrive as
    /// untrusted bytes.
    ///
    /// # Errors
    ///
    /// [`ServiceError::BadFrame`] if a frame fails the header peek, is of
    /// the wrong kind or a future version, or fails the full decode.
    pub fn advance_epoch_via_wire(&self) -> Result<Arc<EpochSnapshot>, ServiceError> {
        let trace_id = self.trace_or_mint();
        let _scope = trace::scoped(trace_id);
        let mut st = self.ingest.lock().expect("ingest lock poisoned");
        let forks = self.metrics.epoch_fork.time(|| st.engine.snapshot_shards());
        self.metrics.tracer.record(
            EventKind::EpochFork,
            trace_id,
            self.metrics.tenant,
            forks.len() as u64,
        );
        let wire_timer = self.metrics.epoch_wire.start_timer();
        // Each shard frame travels as a VERSION_TRACED frame carrying the
        // advance's trace id, so the id survives the serialize → decode
        // hop the multi-server deployment makes for real.
        let frames: Vec<Vec<u8>> = forks
            .iter()
            .map(|fork| {
                wire::attach_trace(dsg_sketch::LinearSketch::snapshot(fork), trace_id)
                    .map_err(ServiceError::BadFrame)
            })
            .collect::<Result<_, _>>()?;
        let total_bytes: u64 = frames.iter().map(|f| f.len() as u64).sum();
        for frame in &frames {
            let header = wire::peek_kind(frame)?;
            if header.kind != wire::KIND_AGM {
                return Err(ServiceError::BadFrame(wire::WireError::WrongKind {
                    expected: wire::KIND_AGM,
                    found: header.kind,
                }));
            }
            if header.version != wire::VERSION && header.version != wire::VERSION_TRACED {
                return Err(ServiceError::BadFrame(wire::WireError::BadVersion(
                    header.version,
                )));
            }
            // Read the id back off the frame — the recorded event proves
            // the causal id crossed the wire, not just this stack frame.
            let recovered = wire::frame_trace_id(frame)
                .map_err(ServiceError::BadFrame)?
                .unwrap_or(0);
            self.metrics.tracer.record(
                EventKind::WireDecode,
                recovered,
                self.metrics.tenant,
                recovered,
            );
        }
        drop(wire_timer);
        self.metrics.tracer.record(
            EventKind::EpochWire,
            trace_id,
            self.metrics.tenant,
            total_bytes,
        );
        let merged = self
            .metrics
            .epoch_merge
            .time(|| reduce_snapshots::<AgmSketch>(&frames))?
            .expect("engine has at least one shard");
        self.metrics
            .tracer
            .record(EventKind::EpochMerge, trace_id, self.metrics.tenant, 0);
        Ok(self.publish(&mut st, merged))
    }

    /// Shared epoch-advance plumbing: snapshot the shards under the
    /// ingest lock, reduce them with `merge`, seal the log, publish.
    fn advance_with<F>(&self, merge: F) -> Arc<EpochSnapshot>
    where
        F: FnOnce(Vec<AgmSketch>) -> AgmSketch,
    {
        let trace_id = self.trace_or_mint();
        let _scope = trace::scoped(trace_id);
        let mut st = self.ingest.lock().expect("ingest lock poisoned");
        let forks = self.metrics.epoch_fork.time(|| st.engine.snapshot_shards());
        self.metrics.tracer.record(
            EventKind::EpochFork,
            trace_id,
            self.metrics.tenant,
            forks.len() as u64,
        );
        let merged = self.metrics.epoch_merge.time(|| merge(forks));
        self.metrics
            .tracer
            .record(EventKind::EpochMerge, trace_id, self.metrics.tenant, 0);
        self.publish(&mut st, merged)
    }

    /// The trace id an epoch advance runs under: the caller's ambient id
    /// when one is in scope (a recovery replay, a durable checkpoint), a
    /// freshly minted one otherwise — so every advance is causally
    /// addressable without forcing every caller to mint.
    fn trace_or_mint(&self) -> u64 {
        match trace::current_trace_id() {
            0 => self.metrics.tracer.next_trace_id(),
            ambient => ambient,
        }
    }

    /// Seals every shard's compacted log and assembles the epoch's net
    /// edge segment by concatenating the (disjoint) shard segments, then
    /// swaps in the new snapshot. Must be called with the ingest lock
    /// held (enforced by the `&mut` borrow). O(current edges) — bounded
    /// by the live graph no matter how long the stream has run.
    fn publish(&self, st: &mut IngestState, merged: AgmSketch) -> Arc<EpochSnapshot> {
        let total = st.engine.pushed();
        let prev = self.snapshot();
        let next_epoch = prev.epoch() + 1;
        let net = self.metrics.epoch_seal.time(|| st.live.seal_epoch());
        self.metrics.tracer.record(
            EventKind::EpochSeal,
            trace::current_trace_id(),
            self.metrics.tenant,
            net.num_edges() as u64,
        );
        let snap = Arc::new(EpochSnapshot::new(
            next_epoch,
            self.config,
            merged,
            Arc::new(net),
            total,
            self.metrics.artifacts.clone(),
        ));
        // Link the predecessor so the new epoch's artifact builders can
        // patch instead of rebuilding; cut the predecessor's own
        // back-link so the chain never grows past depth 1.
        prev.clear_prev();
        snap.set_prev(prev);
        *self.current.write().expect("epoch lock poisoned") = Arc::clone(&snap);
        self.metrics.tracer.record(
            EventKind::EpochPublish,
            trace::current_trace_id(),
            self.metrics.tenant,
            next_epoch,
        );
        snap
    }

    /// Advances an epoch and captures the state a durability layer must
    /// persist, **atomically**: under one ingest-lock hold, every shard is
    /// forked at the same stream position, the forks are merged and
    /// published as the new epoch, and each shard's true fork is returned
    /// next to its sealed net segment. With hash-partitioned routing the
    /// forks need no canonicalization — each is already a deterministic,
    /// O(live subgraph ∩ shard) function of the net sub-stream the shard
    /// owns. A graph restored from the result —
    /// [`GraphRegistry::restore`] — serves the same answers, bit for bit,
    /// as this one did at the capture point.
    pub fn checkpoint_state(&self) -> PersistedGraph {
        let trace_id = self.trace_or_mint();
        let _scope = trace::scoped(trace_id);
        let mut st = self.ingest.lock().expect("ingest lock poisoned");
        let forks = self.metrics.epoch_fork.time(|| st.engine.snapshot_shards());
        self.metrics.tracer.record(
            EventKind::EpochFork,
            trace_id,
            self.metrics.tenant,
            forks.len() as u64,
        );
        let merged = self.metrics.epoch_merge.time(|| merge_forks(&forks));
        self.metrics
            .tracer
            .record(EventKind::EpochMerge, trace_id, self.metrics.tenant, 0);
        let shard_nets = self.metrics.epoch_seal.time(|| st.live.seal_shards());
        let snap = self.publish(&mut st, merged);
        debug_assert_eq!(forks.len(), shard_nets.len(), "one segment per shard");
        PersistedGraph {
            epoch: snap.epoch(),
            total_updates: st.engine.pushed(),
            shards: forks
                .into_iter()
                .zip(shard_nets)
                .map(|(sketch, net)| PersistedShard { sketch, net })
                .collect(),
        }
    }

    /// Rebuilds a served graph from persisted state: each engine worker
    /// resumes from its own sketch (workers spawn pre-loaded), each
    /// shard's compacted log is re-seeded from its sealed segment, and the
    /// capture-point epoch — its net segment assembled by concatenating
    /// the shard segments — is republished as the current snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `state.shards.len() != config.shards`, or if a shard
    /// segment contains an edge the routing function assigns to a
    /// different shard — a checkpoint can only restore into the partition
    /// it was taken from.
    fn restore(
        name: String,
        config: GraphConfig,
        state: PersistedGraph,
        telemetry: Arc<MetricRegistry>,
        tracer: &FlightRecorder,
    ) -> Self {
        let metrics = GraphMetrics::for_graph(&telemetry, tracer, &name, config.shards);
        let engine_cfg = EngineConfig::new(config.shards).batch_size(config.batch_size);
        let net = Arc::new(state.epoch_net());
        let (sketches, shard_nets): (Vec<AgmSketch>, Vec<NetMultiset>) =
            state.shards.into_iter().map(|s| (s.sketch, s.net)).unzip();
        let merged = merge_forks(&sketches);
        let mut engine = ShardedEngine::restore(engine_cfg, sketches, state.total_updates);
        engine.set_metrics(metrics.engine.clone());
        let live = ShardedCompactedLog::from_shard_nets(&shard_nets);
        let snap = EpochSnapshot::new(
            state.epoch,
            config,
            merged,
            Arc::clone(&net),
            state.total_updates,
            metrics.artifacts.clone(),
        );
        Self {
            name,
            config,
            ingest: Mutex::new(IngestState { engine, live }),
            current: RwLock::new(Arc::new(snap)),
            metrics,
            telemetry,
        }
    }

    /// The current epoch snapshot (an `Arc` clone; readers keep querying
    /// it even after later epochs are published).
    pub fn snapshot(&self) -> Arc<EpochSnapshot> {
        Arc::clone(&self.current.read().expect("epoch lock poisoned"))
    }

    /// Executes a query against the **current** epoch. For a pinned
    /// epoch, hold the [`snapshot`](ServedGraph::snapshot) and call
    /// [`EpochSnapshot::execute`] directly.
    ///
    /// # Errors
    ///
    /// Whatever [`EpochSnapshot::execute`] returns.
    pub fn query(&self, query: &Query) -> Result<Response, ServiceError> {
        self.query_pinned(query).1
    }

    /// Like [`query`](ServedGraph::query), but also returns the epoch
    /// snapshot that answered — what the quality auditor needs so a
    /// shadow recompute verifies against the *answering* epoch even if
    /// ingest advances in between.
    pub fn query_pinned(
        &self,
        query: &Query,
    ) -> (Arc<EpochSnapshot>, Result<Response, ServiceError>) {
        let hist = &self.metrics.queries[query.variant_index()];
        let snap = self.snapshot();
        let result = hist.time(|| snap.execute(query));
        (snap, result)
    }

    /// This tenant's slice of the telemetry registry: every series
    /// labelled `graph="<name>"`, as an immutable, diffable
    /// [`MetricsSnapshot`]. Registry-wide views (including unlabelled
    /// pool series) come from [`GraphRegistry::telemetry`].
    pub fn metrics(&self) -> MetricsSnapshot {
        let needle = format!("graph=\"{}\"", self.name);
        self.telemetry
            .snapshot()
            .filter(|series| series.contains(&needle))
    }

    /// A point-in-time operational summary of this tenant — what the
    /// admin endpoint's `/epochz` serves per graph.
    pub fn epoch_stats(&self) -> TenantEpochStats {
        use std::sync::atomic::Ordering;
        let snap = self.snapshot();
        let choices = &self.metrics.artifacts.shared;
        TenantEpochStats {
            name: self.name.clone(),
            epoch: snap.epoch(),
            total_updates: snap.total_updates(),
            net_edges: snap.net_edges().num_edges(),
            num_vertices: snap.num_vertices(),
            load_balance: self.metrics.engine.load_balance.get(),
            incremental_builds: choices.incremental_total.load(Ordering::Relaxed),
            full_builds: choices.full_total.load(Ordering::Relaxed),
            last_patch_nanos: choices.last_patch_nanos.load(Ordering::Relaxed),
        }
    }
}

/// One tenant's row in the admin endpoint's `/epochz` view.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantEpochStats {
    /// The graph's registry name.
    pub name: String,
    /// Epoch of the currently published snapshot.
    pub epoch: u64,
    /// Updates frozen into that snapshot.
    pub total_updates: u64,
    /// Size of the sealed net-edge segment (the live graph's edges).
    pub net_edges: usize,
    /// Vertices of the served graph.
    pub num_vertices: usize,
    /// Live max/mean routed-update ratio across the ingest shards (0.0
    /// when telemetry is off — the gauge is a no-op).
    pub load_balance: f64,
    /// Artifact refreshes this tenant served by patching the previous
    /// epoch (incremental path). Counted across all artifact kinds.
    pub incremental_builds: u64,
    /// Artifact refreshes that ran the full from-scratch build.
    pub full_builds: u64,
    /// Wall time of the most recent successful patch, nanoseconds (0
    /// until the first patch).
    pub last_patch_nanos: u64,
}

/// The multi-tenant registry: many named [`ServedGraph`]s behind one
/// read-mostly lock, sharing one [`MetricRegistry`] every tenant's
/// telemetry lands in.
#[derive(Debug)]
pub struct GraphRegistry {
    graphs: RwLock<HashMap<String, Arc<ServedGraph>>>,
    telemetry: Arc<MetricRegistry>,
    tracer: FlightRecorder,
    /// The accuracy auditor, when installed — query pools sample served
    /// answers into it; the admin server renders it as `/qualityz`.
    auditor: RwLock<Option<Arc<QualityAuditor>>>,
}

impl Default for GraphRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl GraphRegistry {
    /// An empty registry with telemetry on (the default: recording is a
    /// relaxed atomic op per event, cheap enough to keep always-on).
    pub fn new() -> Self {
        Self::with_telemetry(Arc::new(MetricRegistry::new()))
    }

    /// An empty registry recording into `telemetry` — share one
    /// [`MetricRegistry`] across registries, or pass
    /// [`MetricRegistry::noop`] to disable instrumentation entirely
    /// (every handle degrades to a no-op; nothing is ever registered).
    pub fn with_telemetry(telemetry: Arc<MetricRegistry>) -> Self {
        Self::with_observability(telemetry, FlightRecorder::noop())
    }

    /// An empty registry recording metrics into `telemetry` and trace
    /// events into `tracer` — the full observability stack. Every tenant
    /// created or restored through this registry traces its ingest
    /// batches, epoch advances, and artifact builds into the shared
    /// recorder under its own interned tenant token.
    pub fn with_observability(telemetry: Arc<MetricRegistry>, tracer: FlightRecorder) -> Self {
        Self {
            graphs: RwLock::new(HashMap::new()),
            telemetry,
            tracer,
            auditor: RwLock::new(None),
        }
    }

    /// Installs (and starts) the quality auditor on this registry.
    /// Install **before** starting query pools: each
    /// [`QueryService`](crate::QueryService) captures the auditor handle
    /// once at pool start, so a later install is invisible to running
    /// pools. Replacing an existing auditor shuts the old one down.
    pub fn install_auditor(&self, cfg: AuditConfig) -> Arc<QualityAuditor> {
        let auditor = QualityAuditor::start(Arc::clone(&self.telemetry), self.tracer.clone(), cfg);
        let old = self
            .auditor
            .write()
            .expect("auditor lock poisoned")
            .replace(Arc::clone(&auditor));
        if let Some(old) = old {
            old.shutdown();
        }
        auditor
    }

    /// The installed quality auditor, if any.
    pub fn auditor(&self) -> Option<Arc<QualityAuditor>> {
        self.auditor.read().expect("auditor lock poisoned").clone()
    }

    /// The shared metric registry all tenants record into.
    pub fn telemetry(&self) -> &Arc<MetricRegistry> {
        &self.telemetry
    }

    /// The shared flight recorder all tenants trace into (a no-op
    /// recorder unless built via
    /// [`with_observability`](GraphRegistry::with_observability)).
    pub fn tracer(&self) -> &FlightRecorder {
        &self.tracer
    }

    /// Every registered tenant's [`TenantEpochStats`], sorted by name —
    /// the `/epochz` admin view.
    pub fn epoch_stats(&self) -> Vec<TenantEpochStats> {
        let graphs: Vec<Arc<ServedGraph>> = self
            .graphs
            .read()
            .expect("registry lock poisoned")
            .values()
            .cloned()
            .collect();
        let mut stats: Vec<TenantEpochStats> = graphs.iter().map(|g| g.epoch_stats()).collect();
        stats.sort_by(|a, b| a.name.cmp(&b.name));
        stats
    }

    /// Renders every registered series — all tenants, all layers — in
    /// Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        self.telemetry.render_prometheus()
    }

    /// Registers a new graph and starts its ingest engine.
    ///
    /// # Errors
    ///
    /// [`ServiceError::DuplicateGraph`] if the name is taken.
    pub fn create(
        &self,
        name: &str,
        config: GraphConfig,
    ) -> Result<Arc<ServedGraph>, ServiceError> {
        let mut graphs = self.graphs.write().expect("registry lock poisoned");
        if graphs.contains_key(name) {
            return Err(ServiceError::DuplicateGraph(name.to_string()));
        }
        let graph = Arc::new(ServedGraph::new(
            name.to_string(),
            config,
            Arc::clone(&self.telemetry),
            &self.tracer,
        ));
        graphs.insert(name.to_string(), Arc::clone(&graph));
        Ok(graph)
    }

    /// Re-registers a graph from persisted state (see
    /// [`ServedGraph::checkpoint_state`]): the recovery path of a durable
    /// registry. The restored graph's engine resumes from the checkpoint's
    /// shard sketches; replaying the post-checkpoint update tail through
    /// [`ServedGraph::apply`] then brings it to the durable stream
    /// position.
    ///
    /// # Errors
    ///
    /// [`ServiceError::DuplicateGraph`] if the name is taken.
    ///
    /// # Panics
    ///
    /// Panics if `state.shards.len() != config.shards`.
    pub fn restore(
        &self,
        name: &str,
        config: GraphConfig,
        state: PersistedGraph,
    ) -> Result<Arc<ServedGraph>, ServiceError> {
        let mut graphs = self.graphs.write().expect("registry lock poisoned");
        if graphs.contains_key(name) {
            return Err(ServiceError::DuplicateGraph(name.to_string()));
        }
        let graph = Arc::new(ServedGraph::restore(
            name.to_string(),
            config,
            state,
            Arc::clone(&self.telemetry),
            &self.tracer,
        ));
        graphs.insert(name.to_string(), Arc::clone(&graph));
        Ok(graph)
    }

    /// Looks up a graph by name.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownGraph`] if nothing is registered under
    /// `name`.
    pub fn get(&self, name: &str) -> Result<Arc<ServedGraph>, ServiceError> {
        self.graphs
            .read()
            .expect("registry lock poisoned")
            .get(name)
            .cloned()
            .ok_or_else(|| ServiceError::UnknownGraph(name.to_string()))
    }

    /// Unregisters a graph. Existing `Arc` handles (and in-flight
    /// queries) stay valid; when the last handle drops, the engine's
    /// shard workers are joined deterministically (not detached), so a
    /// durable close can flush and delete the tenant's files immediately
    /// after without racing a straggler thread.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownGraph`] if nothing is registered under
    /// `name`.
    pub fn remove(&self, name: &str) -> Result<(), ServiceError> {
        self.graphs
            .write()
            .expect("registry lock poisoned")
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| ServiceError::UnknownGraph(name.to_string()))
    }

    /// Registered graph names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .graphs
            .read()
            .expect("registry lock poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Number of registered graphs.
    pub fn len(&self) -> usize {
        self.graphs.read().expect("registry lock poisoned").len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code may unwrap freely

    use super::*;
    use dsg_graph::gen;
    use dsg_graph::GraphStream;

    #[test]
    fn registry_is_multi_tenant() {
        let reg = GraphRegistry::new();
        assert!(reg.is_empty());
        let a = reg.create("a", GraphConfig::new(10)).unwrap();
        let b = reg.create("b", GraphConfig::new(20).seed(1)).unwrap();
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.names(), vec!["a".to_string(), "b".to_string()]);
        a.insert(0, 1).unwrap();
        b.insert(5, 6).unwrap();
        assert_eq!(a.advance_epoch().total_updates(), 1);
        assert_eq!(b.advance_epoch().total_updates(), 1);
        assert!(matches!(
            reg.create("a", GraphConfig::new(5)),
            Err(ServiceError::DuplicateGraph(_))
        ));
        reg.remove("a").unwrap();
        assert!(matches!(reg.get("a"), Err(ServiceError::UnknownGraph(_))));
        assert!(reg.get("b").is_ok());
    }

    #[test]
    fn epoch_zero_is_empty_and_epochs_count_up() {
        let reg = GraphRegistry::new();
        let g = reg.create("g", GraphConfig::new(8)).unwrap();
        let snap0 = g.snapshot();
        assert_eq!(snap0.epoch(), 0);
        assert_eq!(snap0.total_updates(), 0);
        assert_eq!(snap0.forest().num_components, 8);
        g.insert(0, 1).unwrap();
        assert_eq!(g.advance_epoch().epoch(), 1);
        g.insert(2, 3).unwrap();
        let snap2 = g.advance_epoch();
        assert_eq!(snap2.epoch(), 2);
        assert_eq!(snap2.total_updates(), 2);
        // The old handle still answers from its frozen position.
        assert_eq!(snap0.forest().num_components, 8);
    }

    #[test]
    fn out_of_range_updates_are_rejected_atomically() {
        let reg = GraphRegistry::new();
        let g = reg.create("g", GraphConfig::new(5)).unwrap();
        let batch = [StreamUpdate::insert(0, 1), StreamUpdate::insert(2, 7)];
        assert!(matches!(
            g.apply(&batch),
            Err(ServiceError::VertexOutOfRange { vertex: 7, n: 5 })
        ));
        // Nothing from the bad batch landed.
        assert_eq!(g.advance_epoch().total_updates(), 0);
    }

    #[test]
    fn checkpoint_state_restores_bit_identically() {
        let n = 24;
        let g0 = gen::erdos_renyi(n, 0.2, 21);
        let stream = GraphStream::with_churn(&g0, 1.0, 22);
        let updates = stream.updates();
        let cut = updates.len() / 2;
        let config = GraphConfig::new(n).seed(9).shards(3).batch_size(8);

        let reg = GraphRegistry::new();
        let live = reg.create("live", config).unwrap();
        live.apply(&updates[..cut]).unwrap();
        let state = live.checkpoint_state();
        assert_eq!(state.total_updates, cut as u64);
        assert_eq!(
            state.epoch_net(),
            GraphStream::new(n, updates[..cut].to_vec()).net_multiset(),
            "assembled shard segments must be the net of the durable prefix"
        );
        assert_eq!(state.shards.len(), 3);
        // Per-shard canonicity: every persisted segment entry is owned by
        // the shard that persisted it, and each shard's sketch is exactly
        // a fresh sketch of its own segment (no churn residue survives).
        for (i, shard) in state.shards.iter().enumerate() {
            let mut own = dsg_agm::AgmSketch::new(n, config.seed);
            for e in shard.net.entries() {
                assert_eq!(
                    dsg_engine::shard_for(e.edge.index(n), 3),
                    i,
                    "segment entry on the wrong shard"
                );
                dsg_sketch::LinearSketch::update(&mut own, e.edge.index(n), e.multiplicity as i128);
            }
            assert_eq!(
                dsg_sketch::LinearSketch::to_bytes(&shard.sketch),
                dsg_sketch::LinearSketch::to_bytes(&own),
                "shard {i} fork must be canonical in its own segment"
            );
        }

        // Restore into a second registry and feed both the same tail.
        let reg2 = GraphRegistry::new();
        let back = reg2.restore("live", config, state).unwrap();
        assert_eq!(back.snapshot().epoch(), live.snapshot().epoch());
        live.apply(&updates[cut..]).unwrap();
        back.apply(&updates[cut..]).unwrap();
        let sa = live.advance_epoch();
        let sb = back.advance_epoch();
        assert_eq!(
            dsg_sketch::LinearSketch::to_bytes(sa.sketch()),
            dsg_sketch::LinearSketch::to_bytes(sb.sketch()),
            "restored graph diverged from the uninterrupted one"
        );
        assert_eq!(sa.forest().result.edges, sb.forest().result.edges);
        assert_eq!(sa.total_updates(), sb.total_updates());
        assert!(matches!(
            reg2.restore("live", config, back.checkpoint_state()),
            Err(ServiceError::DuplicateGraph(_))
        ));
    }

    #[test]
    fn telemetry_traces_ingest_epochs_and_queries() {
        let reg = GraphRegistry::new();
        let g = reg
            .create("soc", GraphConfig::new(12).shards(2).batch_size(4))
            .unwrap();
        g.apply(&[
            StreamUpdate::insert(0, 1),
            StreamUpdate::insert(1, 2),
            StreamUpdate::insert(0, 1),
            StreamUpdate::delete(0, 1),
        ])
        .unwrap();
        g.advance_epoch();
        g.query(&Query::Connectivity).unwrap();
        g.query(&Query::Connectivity).unwrap();
        let snap = g.metrics();
        let routed: u64 = (0..2)
            .filter_map(|s| {
                snap.counter(&format!(
                    "dsg_engine_updates_routed_total{{graph=\"soc\",shard=\"{s}\"}}"
                ))
            })
            .sum();
        assert_eq!(routed, 4, "all updates routed through the engine");
        let cancelled: u64 = (0..2)
            .filter_map(|s| {
                snap.counter(&format!(
                    "dsg_engine_cancellations_total{{graph=\"soc\",shard=\"{s}\"}}"
                ))
            })
            .sum();
        assert_eq!(cancelled, 1, "the one deletion cancelled one insertion");
        for phase in ["fork", "merge", "seal"] {
            let h = snap
                .histogram(&format!(
                    "dsg_service_epoch_phase_nanos{{graph=\"soc\",phase=\"{phase}\"}}"
                ))
                .unwrap();
            assert!(h.count() >= 1, "epoch phase {phase} must be timed");
        }
        assert_eq!(
            snap.counter("dsg_service_artifact_builds_total{artifact=\"forest\",graph=\"soc\"}"),
            Some(1),
            "forest built exactly once across two connectivity queries"
        );
        assert_eq!(
            snap.counter(
                "dsg_service_artifact_cache_hits_total{artifact=\"forest\",graph=\"soc\"}"
            ),
            Some(1)
        );
        let q = snap
            .histogram("dsg_service_query_nanos{graph=\"soc\",query=\"connectivity\"}")
            .unwrap();
        assert_eq!(q.count(), 2);
        // The tenant slice carries only this graph's series; the full
        // registry rendering includes them in Prometheus text form.
        assert!(snap.iter().all(|(name, _)| name.contains("graph=\"soc\"")));
        let text = reg.render_prometheus();
        assert!(text.contains("dsg_engine_updates_routed_total{graph=\"soc\",shard=\"0\"}"));
        assert!(text.contains("# TYPE dsg_service_query_nanos histogram"));
    }

    #[test]
    fn oracle_cache_counters_fold_into_the_registry() {
        let reg = GraphRegistry::new();
        let g = reg.create("g", GraphConfig::new(10)).unwrap();
        for v in 0..9 {
            g.insert(v, v + 1).unwrap();
        }
        g.advance_epoch();
        g.query(&Query::Distance(0, 9)).unwrap();
        g.query(&Query::Distance(0, 9)).unwrap();
        let snap = g.metrics();
        let hits = snap
            .counter("dsg_service_oracle_cache_hits_total{graph=\"g\"}")
            .unwrap();
        let misses = snap
            .counter("dsg_service_oracle_cache_misses_total{graph=\"g\"}")
            .unwrap();
        assert!(misses >= 1, "first distance query misses the memo cache");
        assert!(hits >= 1, "repeat distance query hits the memo cache");
        // The old accessor reads the very same cells.
        let stats = g.snapshot().oracle().cache_stats();
        assert_eq!((stats.hits, stats.misses), (hits, misses));
    }

    #[test]
    fn noop_telemetry_registers_and_renders_nothing() {
        let reg = GraphRegistry::with_telemetry(Arc::new(dsg_telemetry::MetricRegistry::noop()));
        let g = reg.create("g", GraphConfig::new(8)).unwrap();
        g.insert(0, 1).unwrap();
        g.advance_epoch();
        g.query(&Query::Connectivity).unwrap();
        assert!(g.metrics().is_empty());
        assert_eq!(reg.render_prometheus(), "");
    }

    #[test]
    fn wire_and_memory_epoch_paths_agree() {
        let n = 30;
        let g0 = gen::erdos_renyi(n, 0.2, 11);
        let stream = GraphStream::with_churn(&g0, 1.0, 12);
        let reg = GraphRegistry::new();
        let a = reg
            .create("mem", GraphConfig::new(n).seed(5).shards(3))
            .unwrap();
        let b = reg
            .create("wire", GraphConfig::new(n).seed(5).shards(3))
            .unwrap();
        a.apply(stream.updates()).unwrap();
        b.apply(stream.updates()).unwrap();
        let sa = a.advance_epoch();
        let sb = b.advance_epoch_via_wire().unwrap();
        assert_eq!(
            dsg_sketch::LinearSketch::to_bytes(sa.sketch()),
            dsg_sketch::LinearSketch::to_bytes(sb.sketch()),
            "wire epoch diverged from in-memory epoch"
        );
        assert_eq!(sa.forest().result.edges, sb.forest().result.edges);
    }
}
