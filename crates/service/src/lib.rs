//! # dsg-service — a concurrent multi-tenant query-serving layer
//!
//! The write path (`dsg-engine`) sharded the paper's ingest; this crate is
//! the read path that makes the system a *service*. The key observation is
//! again linearity, but used in the simultaneous-communication direction
//! emphasized by Filtser–Kapralov–Nouri: because every sketch of a stream
//! prefix is a linear function of that prefix, a long-lived server can
//!
//! 1. keep ingesting deltas into per-shard sketches ([`ShardedEngine`]),
//! 2. periodically **advance an epoch** — fork every shard's state between
//!    batches (no worker teardown), merge the forks, and publish the
//!    result as an immutable [`EpochSnapshot`], and
//! 3. answer queries from the *frozen* snapshot while ingest races ahead,
//!    with answers bit-identical to an offline recomputation over the
//!    stream prefix the epoch froze.
//!
//! Expensive derived objects — the spanning forest, the spanner-backed
//! [`DistanceOracle`](dsg_spanner::oracle::DistanceOracle), the KP12
//! sparsifier — are built **lazily, once per epoch**, behind [`Arc`]s in a
//! per-snapshot artifact cache; advancing the epoch publishes a fresh
//! snapshot and thereby invalidates the old artifacts wholesale.
//!
//! [`GraphRegistry`] hosts many named graphs (multi-tenancy), and
//! [`QueryService`] executes a typed [`Query`]/[`Response`] API on a
//! worker pool. [`LoadGen`] generates deterministic query workloads for
//! benchmarks and experiments (E19).
//!
//! ```
//! use dsg_graph::StreamUpdate;
//! use dsg_service::{GraphConfig, GraphRegistry, Query, Response};
//!
//! let registry = GraphRegistry::new();
//! let g = registry.create("social", GraphConfig::new(6).shards(2)).unwrap();
//! g.apply(&[
//!     StreamUpdate::insert(0, 1),
//!     StreamUpdate::insert(1, 2),
//!     StreamUpdate::insert(4, 5),
//! ]).unwrap();
//! let epoch = g.advance_epoch();
//! assert_eq!(epoch.epoch(), 1);
//! match g.query(&Query::SameComponent(0, 2)).unwrap() {
//!     Response::SameComponent(connected) => assert!(connected),
//!     other => panic!("unexpected response {other:?}"),
//! }
//! ```
//!
//! [`Arc`]: std::sync::Arc
//! [`ShardedEngine`]: dsg_engine::ShardedEngine

// Serving code must not `unwrap()` on request paths: failures surface as
// typed `ServiceError`s, never panics. (CI enforces this with a clippy
// gate shared with dsg-store; `expect` on poisoned locks is deliberate —
// a poisoned lock *is* a programming error.)
#![deny(clippy::unwrap_used)]

mod admin;
pub mod audit;
pub mod compact;
mod epoch;
mod metrics;
mod query;
mod registry;
mod workload;

pub use admin::AdminServer;
pub use audit::{AuditConfig, AuditFinding, AuditSample, QualityAuditor, QualityVerdict};
pub use compact::ShardedCompactedLog;
pub use dsg_graph::{CompactError, CompactedLog};
pub use dsg_telemetry::{
    EventKind, FlightRecorder, Incident, MetricRegistry, MetricsSnapshot, TraceEvent,
};
pub use epoch::{ArtifactStatus, CutData, EpochSnapshot, ForestData};
pub use query::{GraphStats, Query, QueryService, QueryTicket, Response};
pub use registry::{GraphRegistry, PersistedGraph, PersistedShard, ServedGraph, TenantEpochStats};
pub use workload::{LoadGen, QueryMix};

use dsg_core::engine::EngineBuilder;
use dsg_graph::{Edge, Vertex};
use dsg_sketch::WireError;
use dsg_spanner::SpannerParams;
use dsg_sparsifier::SparsifierParams;

/// Seed salt separating the epoch oracle's randomness from the sketches'.
const ORACLE_SALT: u64 = 0x4F52_4143_4C45_5345; // "ORACLESE"
/// Seed salt for the epoch cut sparsifier.
const CUT_SALT: u64 = 0x4355_5453_5041_5253; // "CUTSPARS"

/// Shape of one served graph: stream size, sharding, and the parameters
/// of the per-epoch derived artifacts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphConfig {
    /// Number of vertices of the served graph.
    pub n: usize,
    /// Shared root seed: shard sketches, the epoch oracle, and the epoch
    /// sparsifier all derive their randomness from it.
    pub seed: u64,
    /// Ingest shard (worker thread) count.
    pub shards: usize,
    /// Updates per engine batch.
    pub batch_size: usize,
    /// Hierarchy depth `k` of the per-epoch spanners. The distance
    /// oracle answers with stretch `2^k`, **and** the KP12 cut
    /// sparsifier uses the same depth for its internal oracle (its
    /// `λ = 2^k` knob, see [`GraphConfig::cut_params`]) — deeper
    /// hierarchies mean looser distance answers but smaller sketches,
    /// for both artifacts at once.
    pub spanner_k: usize,
    /// Target spectral precision of the per-epoch KP12 sparsifier that
    /// backs cut queries.
    pub cut_eps: f64,
    /// Incremental-artifact churn budget: an epoch's artifacts are
    /// refreshed by **patching** the previous epoch's artifacts when the
    /// segment diff holds at most `churn_threshold × live_edges` changes,
    /// and rebuilt from scratch past it. Purely a performance knob —
    /// patched artifacts are bit-identical to rebuilt ones at any
    /// threshold. `0.0` disables incremental maintenance entirely.
    pub churn_threshold: f64,
}

impl GraphConfig {
    /// A config for graphs on `n` vertices with serving-friendly defaults:
    /// 2 shards, batches of 256, a 4-spanner oracle (`k = 2`), and a
    /// `0.5`-precision cut sparsifier.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "need at least two vertices");
        Self {
            n,
            seed: 0,
            shards: 2,
            batch_size: 256,
            spanner_k: 2,
            cut_eps: 0.5,
            churn_threshold: 0.2,
        }
    }

    /// Sets the shared root seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the ingest shard count.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        self.shards = shards;
        self
    }

    /// Sets the engine batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        self.batch_size = batch_size;
        self
    }

    /// Sets the spanner hierarchy depth `k` — oracle stretch `2^k`, and
    /// the KP12 cut sparsifier's internal oracle depth with it (see the
    /// [`spanner_k`](GraphConfig::spanner_k) field docs).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn spanner_k(mut self, k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        self.spanner_k = k;
        self
    }

    /// Sets the cut-sparsifier precision target.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is not in `(0, 1)`.
    pub fn cut_eps(mut self, eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
        self.cut_eps = eps;
        self
    }

    /// Sets the incremental-artifact churn budget (see the
    /// [`churn_threshold`](GraphConfig::churn_threshold) field docs).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is negative or not finite.
    pub fn churn_threshold(mut self, threshold: f64) -> Self {
        assert!(
            threshold.is_finite() && threshold >= 0.0,
            "churn threshold must be finite and non-negative"
        );
        self.churn_threshold = threshold;
        self
    }

    /// The exact spanner parameters an epoch of this graph builds its
    /// distance oracle with — public so an offline recomputation (the
    /// snapshot-isolation tests, a cold-standby server) can reproduce
    /// epoch artifacts bit-for-bit.
    pub fn oracle_params(&self) -> SpannerParams {
        SpannerParams::new(self.spanner_k, self.seed ^ ORACLE_SALT)
    }

    /// The exact KP12 parameters an epoch of this graph builds its cut
    /// sparsifier with (see [`oracle_params`](GraphConfig::oracle_params)).
    pub fn cut_params(&self) -> SparsifierParams {
        SparsifierParams::new(self.spanner_k, self.cut_eps, self.seed ^ CUT_SALT)
    }
}

/// An [`EngineBuilder`] already names the ingest shape (vertices, shards,
/// batching, seed); a service graph adds only the artifact parameters.
impl From<&EngineBuilder> for GraphConfig {
    fn from(b: &EngineBuilder) -> Self {
        GraphConfig::new(b.num_vertices())
            .seed(b.root_seed())
            .shards(b.num_shards())
            .batch_size(b.updates_per_batch())
    }
}

/// Why a service call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// No graph registered under this name.
    UnknownGraph(String),
    /// A graph with this name already exists.
    DuplicateGraph(String),
    /// A query or update referenced a vertex outside `[0, n)`.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: Vertex,
        /// The registered graph's vertex count.
        n: usize,
    },
    /// An update carried a delta outside ±1 — not a dynamic-stream
    /// update at all.
    InvalidDelta {
        /// The offending delta.
        delta: i8,
    },
    /// A deletion would drive some pair's net multiplicity below zero —
    /// outside the dynamic-stream model, and the one thing the compacted
    /// log cannot represent. The whole batch is rejected atomically.
    NegativeMultiplicity {
        /// The pair the deletion would over-delete.
        edge: Edge,
    },
    /// An incoming snapshot frame failed validation (header peek or full
    /// decode).
    BadFrame(WireError),
    /// The query pool has shut down and cannot take new work.
    PoolShutDown,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownGraph(name) => write!(f, "unknown graph '{name}'"),
            ServiceError::DuplicateGraph(name) => write!(f, "graph '{name}' already exists"),
            ServiceError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range for n = {n}")
            }
            ServiceError::InvalidDelta { delta } => {
                write!(f, "update delta {delta} is not ±1")
            }
            ServiceError::NegativeMultiplicity { edge } => {
                write!(
                    f,
                    "deletion of {edge} would drive its net multiplicity below zero"
                )
            }
            ServiceError::BadFrame(err) => write!(f, "bad snapshot frame: {err}"),
            ServiceError::PoolShutDown => write!(f, "query pool has shut down"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::BadFrame(err) => Some(err),
            _ => None,
        }
    }
}

impl From<WireError> for ServiceError {
    fn from(err: WireError) -> Self {
        ServiceError::BadFrame(err)
    }
}

/// The compacted-log core (now in `dsg-graph`) reports model violations
/// with its own error type; the serving layer surfaces them unchanged.
impl From<CompactError> for ServiceError {
    fn from(err: CompactError) -> Self {
        match err {
            CompactError::InvalidDelta { delta } => ServiceError::InvalidDelta { delta },
            CompactError::NegativeMultiplicity { edge } => {
                ServiceError::NegativeMultiplicity { edge }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_from_engine_builder_carries_ingest_shape() {
        let b = EngineBuilder::new(50).shards(3).batch_size(64).seed(9);
        let cfg = GraphConfig::from(&b);
        assert_eq!(cfg.n, 50);
        assert_eq!(cfg.shards, 3);
        assert_eq!(cfg.batch_size, 64);
        assert_eq!(cfg.seed, 9);
    }

    #[test]
    fn errors_display_usefully() {
        let e = ServiceError::UnknownGraph("g".into());
        assert!(e.to_string().contains("unknown graph"));
        let e = ServiceError::VertexOutOfRange { vertex: 9, n: 5 };
        assert!(e.to_string().contains("out of range"));
        let e: ServiceError = WireError::BadMagic.into();
        assert!(e.to_string().contains("bad snapshot frame"));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_config_rejected() {
        GraphConfig::new(1);
    }
}
