//! The serving layer's sharded compacted log: one net-multiplicity edge
//! map per engine shard, partitioned by the engine's own routing
//! function.
//!
//! The cancellation core itself ([`CompactedLog`]) lives in `dsg-graph`
//! (`dsg_graph::compact`) — it is pure stream semantics. This module
//! mirrors the edge-partitioned engine on the validation side:
//! [`ShardedCompactedLog`] keeps one [`CompactedLog`] per shard, routes
//! every update with [`dsg_engine::shard_for`] exactly as the engine
//! routes it to a worker, and seals **per-shard net segments** whose
//! concatenation is the epoch segment. Because routing is by edge
//! identity, the shard segments are disjoint by construction — assembling
//! the epoch segment is a concatenation
//! ([`NetMultiset::merge_disjoint`]), not a multiplicity merge — and each
//! shard's segment is precisely the net sub-stream its engine worker has
//! sketched, which is what lets a checkpoint persist true per-shard
//! frames and re-seed each worker's compacted state on restore.

use crate::ServiceError;
use dsg_engine::shard_for;
use dsg_graph::{CompactedLog, Edge, NetMultiset, StreamUpdate};
use std::collections::HashMap;

/// One compacted log per engine shard, partitioned by
/// [`dsg_engine::shard_for`] over the canonical edge id — the write-side
/// mirror of the edge-partitioned engine.
#[derive(Debug, Clone)]
pub struct ShardedCompactedLog {
    n: usize,
    shards: Vec<CompactedLog>,
}

impl ShardedCompactedLog {
    /// Empty logs over `n` vertices, one per shard.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(n: usize, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        Self {
            n,
            shards: (0..shards).map(|_| CompactedLog::new(n)).collect(),
        }
    }

    /// Rebuilds the per-shard maps from sealed per-shard segments (the
    /// restore path of a durability layer).
    ///
    /// # Panics
    ///
    /// Panics if `nets` is empty, if the segments disagree on the vertex
    /// count, or if some entry is routed to the wrong shard under
    /// [`shard_for`] — a checkpoint can only restore into the partition
    /// it was taken from.
    pub fn from_shard_nets(nets: &[NetMultiset]) -> Self {
        let n = nets
            .first()
            .expect("need at least one shard segment")
            .num_vertices();
        let shards: Vec<CompactedLog> = nets
            .iter()
            .map(|net| {
                assert_eq!(net.num_vertices(), n, "shard segment vertex-count mismatch");
                CompactedLog::from_net(net)
            })
            .collect();
        for (i, net) in nets.iter().enumerate() {
            for e in net.entries() {
                assert_eq!(
                    shard_for(e.edge.index(n), nets.len()),
                    i,
                    "segment entry {} routed to the wrong shard",
                    e.edge
                );
            }
        }
        Self { n, shards }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total distinct live pairs across all shards — the O(graph) size
    /// the serving and durability layers are bounded by.
    pub fn live_edges(&self) -> usize {
        self.shards.iter().map(CompactedLog::live_edges).sum()
    }

    /// The shard that owns `edge` — by construction the same worker the
    /// engine routes the edge's updates to.
    fn shard_of(&self, edge: Edge) -> usize {
        shard_for(edge.index(self.n), self.shards.len())
    }

    /// Validates a whole batch against the current maps without mutating
    /// them: every delta must be ±1 and no prefix of the batch may drive
    /// any pair's net multiplicity below zero. `ServedGraph::apply` calls
    /// this before anything lands, so a bad batch never half-applies.
    ///
    /// # Errors
    ///
    /// [`ServiceError::InvalidDelta`] for a delta outside ±1,
    /// [`ServiceError::NegativeMultiplicity`] for a deletion below zero.
    pub fn check_batch(&self, updates: &[StreamUpdate]) -> Result<(), ServiceError> {
        let mut offsets: HashMap<Edge, i64> = HashMap::new();
        for up in updates {
            if up.delta != 1 && up.delta != -1 {
                return Err(ServiceError::InvalidDelta { delta: up.delta });
            }
            let off = offsets.entry(up.edge).or_insert(0);
            *off += up.delta as i64;
            let base = self.shards[self.shard_of(up.edge)].multiplicity(up.edge) as i64;
            if base + *off < 0 {
                return Err(ServiceError::NegativeMultiplicity { edge: up.edge });
            }
        }
        Ok(())
    }

    /// Applies one (already validated) update to the owning shard's map,
    /// returning the shard index it routed to (so callers can attribute
    /// the event — e.g. a cancellation — without re-hashing the edge).
    pub(crate) fn apply(&mut self, up: &StreamUpdate) -> usize {
        let shard = self.shard_of(up.edge);
        self.shards[shard].apply(up);
        shard
    }

    /// Seals every shard's state into its canonical net segment, in shard
    /// order — what a checkpoint persists next to the per-shard sketch
    /// frames. O(current edges) total.
    pub fn seal_shards(&self) -> Vec<NetMultiset> {
        self.shards.iter().map(CompactedLog::seal).collect()
    }

    /// Seals the whole epoch segment by concatenating the (disjoint)
    /// shard segments — the input every multi-pass epoch artifact
    /// rebuilds from.
    pub fn seal_epoch(&self) -> NetMultiset {
        let shard_nets = self.seal_shards();
        NetMultiset::merge_disjoint(self.n, &shard_nets)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code may unwrap freely

    use super::*;

    #[test]
    fn cancellation_keeps_state_at_live_edges() {
        let mut log = ShardedCompactedLog::new(8, 3);
        for _ in 0..100 {
            for up in [StreamUpdate::insert(0, 1), StreamUpdate::delete(0, 1)] {
                log.check_batch(std::slice::from_ref(&up)).unwrap();
                log.apply(&up);
            }
        }
        assert_eq!(log.live_edges(), 0);
        log.apply(&StreamUpdate::insert(2, 3));
        assert_eq!(log.live_edges(), 1);
        let net = log.seal_epoch();
        assert_eq!(net.num_edges(), 1);
        assert_eq!(net.entries()[0].edge, Edge::new(2, 3));
    }

    #[test]
    fn deletion_below_zero_is_guarded() {
        let log = ShardedCompactedLog::new(8, 2);
        assert!(matches!(
            log.check_batch(&[StreamUpdate::delete(0, 1)]),
            Err(ServiceError::NegativeMultiplicity { edge }) if edge == Edge::new(0, 1)
        ));
        // A batch may delete what it inserts, in order…
        log.check_batch(&[StreamUpdate::insert(0, 1), StreamUpdate::delete(0, 1)])
            .unwrap();
        // …but not the other way around (prefix-wise validation).
        assert!(matches!(
            log.check_batch(&[StreamUpdate::delete(0, 1), StreamUpdate::insert(0, 1)]),
            Err(ServiceError::NegativeMultiplicity { .. })
        ));
    }

    #[test]
    fn weird_deltas_are_rejected() {
        let log = ShardedCompactedLog::new(4, 1);
        let mut up = StreamUpdate::insert(0, 1);
        up.delta = 0;
        assert!(matches!(
            log.check_batch(&[up]),
            Err(ServiceError::InvalidDelta { delta: 0 })
        ));
    }

    #[test]
    fn shard_segments_partition_the_epoch_segment() {
        let n = 12;
        let mut log = ShardedCompactedLog::new(n, 3);
        for u in 0..(n as u32 - 1) {
            log.apply(&StreamUpdate::insert(u, u + 1));
        }
        let shard_nets = log.seal_shards();
        assert_eq!(shard_nets.len(), 3);
        // Every sealed entry sits in the shard that owns its edge id.
        for (i, net) in shard_nets.iter().enumerate() {
            for e in net.entries() {
                assert_eq!(shard_for(e.edge.index(n), 3), i);
            }
        }
        // Concatenating the segments reproduces the epoch segment.
        let total: usize = shard_nets.iter().map(NetMultiset::num_edges).sum();
        let epoch = log.seal_epoch();
        assert_eq!(epoch.num_edges(), total);
        assert_eq!(epoch.num_edges(), n - 1);
    }

    #[test]
    fn seal_roundtrips_through_from_shard_nets() {
        let n = 10;
        let mut log = ShardedCompactedLog::new(n, 4);
        for up in [
            StreamUpdate::insert(0, 1),
            StreamUpdate::insert(0, 1),
            StreamUpdate::insert(4, 7),
            StreamUpdate::insert(2, 9),
            StreamUpdate::delete(0, 1),
        ] {
            log.apply(&up);
        }
        let shard_nets = log.seal_shards();
        let back = ShardedCompactedLog::from_shard_nets(&shard_nets);
        assert_eq!(back.seal_shards(), shard_nets);
        assert_eq!(back.seal_epoch(), log.seal_epoch());
        assert_eq!(back.live_edges(), 3);
    }

    #[test]
    #[should_panic(expected = "routed to the wrong shard")]
    fn mis_routed_segments_are_rejected_on_restore() {
        let n = 10;
        let mut log = ShardedCompactedLog::new(n, 4);
        for u in 0..8 {
            log.apply(&StreamUpdate::insert(u, u + 1));
        }
        let mut nets = log.seal_shards();
        nets.reverse(); // segments now claim the wrong shards
        let _ = ShardedCompactedLog::from_shard_nets(&nets);
    }
}
