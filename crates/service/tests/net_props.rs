//! Order-insensitivity: the correctness ground of log compaction.
//!
//! Every epoch artifact is a function of the stream's **net edge
//! multiset** — never of update order, interleaving, or stream length.
//! These properties pit streams with wildly different shapes (pure
//! permutations; insert/delete interleavings at different churn volumes)
//! but equal net effect against each other and demand bit-identical
//! epochs: sketch bytes, sealed segments, forest edges, component labels,
//! oracle distances, and (deterministically) KP12 cut estimates. Plus the
//! guard rail that makes cancellation sound: a deletion below net
//! multiplicity zero is a typed, whole-batch-atomic error.

use dsg_graph::{gen, GraphStream, StreamUpdate, Vertex};
use dsg_service::{GraphConfig, GraphRegistry, Query, Response, ServiceError};
use dsg_sketch::LinearSketch;
use proptest::prelude::*;
use std::sync::Arc;

/// Ingests a full stream into a fresh served graph and advances one
/// epoch.
fn epoch_of(config: GraphConfig, updates: &[StreamUpdate]) -> Arc<dsg_service::EpochSnapshot> {
    let reg = GraphRegistry::new();
    let served = reg.create("g", config).unwrap();
    served.apply(updates).unwrap();
    served.advance_epoch()
}

proptest! {
    /// Permutations: two insertion-only deliveries of the same edge set
    /// in different orders produce bit-identical epochs.
    #[test]
    fn artifacts_invariant_under_permutation(
        graph_seed in 0u64..30,
        order_a in 0u64..1000,
        order_b in 0u64..1000,
        shards in 1usize..4,
    ) {
        let n = 24;
        let g = gen::erdos_renyi(n, 0.18, graph_seed);
        let config = GraphConfig::new(n).seed(5).shards(shards).batch_size(8);
        let ea = epoch_of(config, GraphStream::insert_only(&g, order_a).updates());
        let eb = epoch_of(config, GraphStream::insert_only(&g, order_b).updates());
        prop_assert_eq!(
            LinearSketch::to_bytes(ea.sketch()),
            LinearSketch::to_bytes(eb.sketch()),
            "sketch bytes diverged under permutation"
        );
        prop_assert_eq!(ea.net_edges().entries(), eb.net_edges().entries());
        prop_assert_eq!(&ea.forest().result.edges, &eb.forest().result.edges);
        prop_assert_eq!(&ea.forest().labels, &eb.forest().labels);
        let (oa, ob) = (ea.oracle(), eb.oracle());
        for u in 0..n as Vertex {
            prop_assert_eq!(oa.estimate(u, (u + 5) % n as Vertex),
                ob.estimate(u, (u + 5) % n as Vertex));
        }
    }

    /// Interleavings: insert/delete schedules at different churn volumes
    /// (1x vs 3x the live edges, different shuffles, different deletion
    /// placements) with equal net effect produce bit-identical epochs —
    /// even though one stream is several times the other's length.
    #[test]
    fn artifacts_invariant_under_churn_interleavings(
        graph_seed in 0u64..30,
        churn_seed_a in 0u64..500,
        churn_seed_b in 0u64..500,
        shards in 1usize..4,
    ) {
        let n = 24;
        let g = gen::erdos_renyi(n, 0.18, graph_seed);
        let config = GraphConfig::new(n).seed(7).shards(shards).batch_size(8);
        let sa = GraphStream::with_churn(&g, 1.0, churn_seed_a);
        let sb = GraphStream::with_churn(&g, 3.0, churn_seed_b);
        let ea = epoch_of(config, sa.updates());
        let eb = epoch_of(config, sb.updates());
        prop_assert_eq!(
            LinearSketch::to_bytes(ea.sketch()),
            LinearSketch::to_bytes(eb.sketch()),
            "sketch bytes diverged under interleaving"
        );
        prop_assert_eq!(ea.net_edges().entries(), eb.net_edges().entries());
        prop_assert_eq!(&ea.forest().result.edges, &eb.forest().result.edges);
        prop_assert_eq!(ea.forest().num_components, eb.forest().num_components);
        let (oa, ob) = (ea.oracle(), eb.oracle());
        for u in 0..n as Vertex {
            prop_assert_eq!(oa.estimate(3, u), ob.estimate(3, u));
        }
    }

    /// Routing invariance up the whole stack: a multi-shard
    /// hash-partitioned graph and a single-threaded (1-shard) graph fed
    /// the same churn-heavy stream publish bit-identical epochs — sketch
    /// bytes, sealed segment, forest, labels, oracle distances. The
    /// engine's partition of the edge space must be unobservable in every
    /// served answer.
    #[test]
    fn artifacts_invariant_under_shard_topology(
        graph_seed in 0u64..30,
        churn_seed in 0u64..500,
        shards in 2usize..5,
    ) {
        let n = 24;
        let g = gen::erdos_renyi(n, 0.18, graph_seed);
        let stream = GraphStream::with_churn(&g, 2.0, churn_seed);
        let base = GraphConfig::new(n).seed(9).batch_size(8);
        let multi = epoch_of(base.shards(shards), stream.updates());
        let single = epoch_of(base.shards(1), stream.updates());
        prop_assert_eq!(
            LinearSketch::to_bytes(multi.sketch()),
            LinearSketch::to_bytes(single.sketch()),
            "sketch bytes diverged across shard topologies"
        );
        prop_assert_eq!(multi.net_edges().entries(), single.net_edges().entries());
        prop_assert_eq!(&multi.forest().result.edges, &single.forest().result.edges);
        prop_assert_eq!(&multi.forest().labels, &single.forest().labels);
        let (om, os) = (multi.oracle(), single.oracle());
        for u in 0..n as Vertex {
            prop_assert_eq!(om.estimate(u, (u + 7) % n as Vertex),
                os.estimate(u, (u + 7) % n as Vertex));
        }
    }

    /// The guard rail: a deletion that would drive net multiplicity below
    /// zero is rejected with a typed error, whole-batch-atomically, at
    /// any position in the batch.
    #[test]
    fn deletions_below_zero_are_guarded(
        graph_seed in 0u64..30,
        bad_at in 0usize..6,
    ) {
        let n = 16;
        let g = gen::erdos_renyi(n, 0.3, graph_seed);
        let stream = GraphStream::insert_only(&g, graph_seed ^ 0x5A);
        let reg = GraphRegistry::new();
        let served = reg.create("g", GraphConfig::new(n).seed(1)).unwrap();
        served.apply(stream.updates()).unwrap();

        // A batch that is fine up to `bad_at`, then over-deletes a pair
        // that was already deleted once.
        let victim = stream.updates()[0].edge;
        let mut batch: Vec<StreamUpdate> = (0..bad_at)
            .map(|i| StreamUpdate::insert((i % 3) as Vertex, 10 + (i % 5) as Vertex))
            .collect();
        batch.push(StreamUpdate::delete(victim.u(), victim.v())); // legal: live
        batch.push(StreamUpdate::delete(victim.u(), victim.v())); // below zero
        let before = served.advance_epoch();
        match served.apply(&batch) {
            Err(ServiceError::NegativeMultiplicity { edge }) => {
                prop_assert_eq!(edge, victim);
            }
            other => prop_assert!(false, "expected NegativeMultiplicity, got {:?}", other),
        }
        // Atomic: nothing from the bad batch landed — not even its legal
        // prefix.
        let after = served.advance_epoch();
        prop_assert_eq!(after.total_updates(), before.total_updates());
        prop_assert_eq!(
            LinearSketch::to_bytes(after.sketch()),
            LinearSketch::to_bytes(before.sketch())
        );
    }
}

/// Cut estimates join the invariance contract: KP12 over the sealed
/// segment is deterministic, so two interleavings with one net effect
/// serve identical cut values — and so do two shard topologies of the
/// same stream (the assembled epoch segment is canonical regardless of
/// how the edge space was partitioned). One deterministic case (KP12 is
/// too heavy for a 96-case property run).
#[test]
fn cut_estimates_invariant_under_interleavings_and_topology() {
    let n = 28;
    let g = gen::erdos_renyi(n, 0.2, 11);
    let config = GraphConfig::new(n).seed(13).shards(2);
    let ea = epoch_of(config, GraphStream::with_churn(&g, 0.5, 12).updates());
    let eb = epoch_of(config, GraphStream::with_churn(&g, 2.5, 13).updates());
    let ec = epoch_of(
        GraphConfig::new(n).seed(13).shards(1),
        GraphStream::with_churn(&g, 2.5, 13).updates(),
    );
    let side: Vec<Vertex> = (0..n as Vertex).filter(|v| v % 3 == 0).collect();
    let Response::CutEstimate(a) = ea.execute(&Query::CutEstimate(side.clone())).unwrap() else {
        panic!("wrong variant");
    };
    let Response::CutEstimate(b) = eb.execute(&Query::CutEstimate(side.clone())).unwrap() else {
        panic!("wrong variant");
    };
    let Response::CutEstimate(c) = ec.execute(&Query::CutEstimate(side)).unwrap() else {
        panic!("wrong variant");
    };
    assert_eq!(a, b, "cut estimate diverged across interleavings");
    assert_eq!(a, c, "cut estimate diverged across shard topologies");
}

/// Invalid deltas are typed errors too (the compacted log can only cancel
/// ±1 steps).
#[test]
fn invalid_deltas_are_typed_errors() {
    let reg = GraphRegistry::new();
    let served = reg.create("g", GraphConfig::new(8)).unwrap();
    let mut up = StreamUpdate::insert(0, 1);
    up.delta = 3;
    assert!(matches!(
        served.apply(&[up]),
        Err(ServiceError::InvalidDelta { delta: 3 })
    ));
    assert_eq!(served.advance_epoch().total_updates(), 0);
}
