//! Order-insensitivity: the correctness ground of log compaction.
//!
//! Every epoch artifact is a function of the stream's **net edge
//! multiset** — never of update order, interleaving, or stream length.
//! These properties pit streams with wildly different shapes (pure
//! permutations; insert/delete interleavings at different churn volumes)
//! but equal net effect against each other and demand bit-identical
//! epochs: sketch bytes, sealed segments, forest edges, component labels,
//! oracle distances, and (deterministically) KP12 cut estimates. Plus the
//! guard rail that makes cancellation sound: a deletion below net
//! multiplicity zero is a typed, whole-batch-atomic error.

use dsg_graph::{gen, Edge, GraphStream, StreamUpdate, Vertex};
use dsg_service::{EpochSnapshot, GraphConfig, GraphRegistry, Query, Response, ServiceError};
use dsg_sketch::LinearSketch;
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

/// Ingests a full stream into a fresh served graph and advances one
/// epoch.
fn epoch_of(config: GraphConfig, updates: &[StreamUpdate]) -> Arc<dsg_service::EpochSnapshot> {
    let reg = GraphRegistry::new();
    let served = reg.create("g", config).unwrap();
    served.apply(updates).unwrap();
    served.advance_epoch()
}

proptest! {
    /// Permutations: two insertion-only deliveries of the same edge set
    /// in different orders produce bit-identical epochs.
    #[test]
    fn artifacts_invariant_under_permutation(
        graph_seed in 0u64..30,
        order_a in 0u64..1000,
        order_b in 0u64..1000,
        shards in 1usize..4,
    ) {
        let n = 24;
        let g = gen::erdos_renyi(n, 0.18, graph_seed);
        let config = GraphConfig::new(n).seed(5).shards(shards).batch_size(8);
        let ea = epoch_of(config, GraphStream::insert_only(&g, order_a).updates());
        let eb = epoch_of(config, GraphStream::insert_only(&g, order_b).updates());
        prop_assert_eq!(
            LinearSketch::to_bytes(ea.sketch()),
            LinearSketch::to_bytes(eb.sketch()),
            "sketch bytes diverged under permutation"
        );
        prop_assert_eq!(ea.net_edges().entries(), eb.net_edges().entries());
        prop_assert_eq!(&ea.forest().result.edges, &eb.forest().result.edges);
        prop_assert_eq!(&ea.forest().labels, &eb.forest().labels);
        let (oa, ob) = (ea.oracle(), eb.oracle());
        for u in 0..n as Vertex {
            prop_assert_eq!(oa.estimate(u, (u + 5) % n as Vertex),
                ob.estimate(u, (u + 5) % n as Vertex));
        }
    }

    /// Interleavings: insert/delete schedules at different churn volumes
    /// (1x vs 3x the live edges, different shuffles, different deletion
    /// placements) with equal net effect produce bit-identical epochs —
    /// even though one stream is several times the other's length.
    #[test]
    fn artifacts_invariant_under_churn_interleavings(
        graph_seed in 0u64..30,
        churn_seed_a in 0u64..500,
        churn_seed_b in 0u64..500,
        shards in 1usize..4,
    ) {
        let n = 24;
        let g = gen::erdos_renyi(n, 0.18, graph_seed);
        let config = GraphConfig::new(n).seed(7).shards(shards).batch_size(8);
        let sa = GraphStream::with_churn(&g, 1.0, churn_seed_a);
        let sb = GraphStream::with_churn(&g, 3.0, churn_seed_b);
        let ea = epoch_of(config, sa.updates());
        let eb = epoch_of(config, sb.updates());
        prop_assert_eq!(
            LinearSketch::to_bytes(ea.sketch()),
            LinearSketch::to_bytes(eb.sketch()),
            "sketch bytes diverged under interleaving"
        );
        prop_assert_eq!(ea.net_edges().entries(), eb.net_edges().entries());
        prop_assert_eq!(&ea.forest().result.edges, &eb.forest().result.edges);
        prop_assert_eq!(ea.forest().num_components, eb.forest().num_components);
        let (oa, ob) = (ea.oracle(), eb.oracle());
        for u in 0..n as Vertex {
            prop_assert_eq!(oa.estimate(3, u), ob.estimate(3, u));
        }
    }

    /// Routing invariance up the whole stack: a multi-shard
    /// hash-partitioned graph and a single-threaded (1-shard) graph fed
    /// the same churn-heavy stream publish bit-identical epochs — sketch
    /// bytes, sealed segment, forest, labels, oracle distances. The
    /// engine's partition of the edge space must be unobservable in every
    /// served answer.
    #[test]
    fn artifacts_invariant_under_shard_topology(
        graph_seed in 0u64..30,
        churn_seed in 0u64..500,
        shards in 2usize..5,
    ) {
        let n = 24;
        let g = gen::erdos_renyi(n, 0.18, graph_seed);
        let stream = GraphStream::with_churn(&g, 2.0, churn_seed);
        let base = GraphConfig::new(n).seed(9).batch_size(8);
        let multi = epoch_of(base.shards(shards), stream.updates());
        let single = epoch_of(base.shards(1), stream.updates());
        prop_assert_eq!(
            LinearSketch::to_bytes(multi.sketch()),
            LinearSketch::to_bytes(single.sketch()),
            "sketch bytes diverged across shard topologies"
        );
        prop_assert_eq!(multi.net_edges().entries(), single.net_edges().entries());
        prop_assert_eq!(&multi.forest().result.edges, &single.forest().result.edges);
        prop_assert_eq!(&multi.forest().labels, &single.forest().labels);
        let (om, os) = (multi.oracle(), single.oracle());
        for u in 0..n as Vertex {
            prop_assert_eq!(om.estimate(u, (u + 7) % n as Vertex),
                os.estimate(u, (u + 7) % n as Vertex));
        }
    }

    /// The guard rail: a deletion that would drive net multiplicity below
    /// zero is rejected with a typed error, whole-batch-atomically, at
    /// any position in the batch.
    #[test]
    fn deletions_below_zero_are_guarded(
        graph_seed in 0u64..30,
        bad_at in 0usize..6,
    ) {
        let n = 16;
        let g = gen::erdos_renyi(n, 0.3, graph_seed);
        let stream = GraphStream::insert_only(&g, graph_seed ^ 0x5A);
        let reg = GraphRegistry::new();
        let served = reg.create("g", GraphConfig::new(n).seed(1)).unwrap();
        served.apply(stream.updates()).unwrap();

        // A batch that is fine up to `bad_at`, then over-deletes a pair
        // that was already deleted once.
        let victim = stream.updates()[0].edge;
        let mut batch: Vec<StreamUpdate> = (0..bad_at)
            .map(|i| StreamUpdate::insert((i % 3) as Vertex, 10 + (i % 5) as Vertex))
            .collect();
        batch.push(StreamUpdate::delete(victim.u(), victim.v())); // legal: live
        batch.push(StreamUpdate::delete(victim.u(), victim.v())); // below zero
        let before = served.advance_epoch();
        match served.apply(&batch) {
            Err(ServiceError::NegativeMultiplicity { edge }) => {
                prop_assert_eq!(edge, victim);
            }
            other => prop_assert!(false, "expected NegativeMultiplicity, got {:?}", other),
        }
        // Atomic: nothing from the bad batch landed — not even its legal
        // prefix.
        let after = served.advance_epoch();
        prop_assert_eq!(after.total_updates(), before.total_updates());
        prop_assert_eq!(
            LinearSketch::to_bytes(after.sketch()),
            LinearSketch::to_bytes(before.sketch())
        );
    }
}

/// Cut estimates join the invariance contract: KP12 over the sealed
/// segment is deterministic, so two interleavings with one net effect
/// serve identical cut values — and so do two shard topologies of the
/// same stream (the assembled epoch segment is canonical regardless of
/// how the edge space was partitioned). One deterministic case (KP12 is
/// too heavy for a 96-case property run).
#[test]
fn cut_estimates_invariant_under_interleavings_and_topology() {
    let n = 28;
    let g = gen::erdos_renyi(n, 0.2, 11);
    let config = GraphConfig::new(n).seed(13).shards(2);
    let ea = epoch_of(config, GraphStream::with_churn(&g, 0.5, 12).updates());
    let eb = epoch_of(config, GraphStream::with_churn(&g, 2.5, 13).updates());
    let ec = epoch_of(
        GraphConfig::new(n).seed(13).shards(1),
        GraphStream::with_churn(&g, 2.5, 13).updates(),
    );
    let side: Vec<Vertex> = (0..n as Vertex).filter(|v| v % 3 == 0).collect();
    let Response::CutEstimate(a) = ea.execute(&Query::CutEstimate(side.clone())).unwrap() else {
        panic!("wrong variant");
    };
    let Response::CutEstimate(b) = eb.execute(&Query::CutEstimate(side.clone())).unwrap() else {
        panic!("wrong variant");
    };
    let Response::CutEstimate(c) = ec.execute(&Query::CutEstimate(side)).unwrap() else {
        panic!("wrong variant");
    };
    assert_eq!(a, b, "cut estimate diverged across interleavings");
    assert_eq!(a, c, "cut estimate diverged across shard topologies");
}

/// Builds every artifact of a snapshot, so the *next* epoch's builders
/// find a patchable predecessor.
fn touch_artifacts(snap: &EpochSnapshot) {
    let _ = snap.forest();
    let _ = snap.oracle();
    let _ = snap.cut_data();
}

/// Full bit-identity check between two epoch snapshots of the same
/// stream position: sketch bytes, sealed segment, forest edge set +
/// labels + component count, every oracle distance row, and the cut
/// Laplacian down to the bit patterns of its weights and degrees.
fn assert_bit_identical(a: &EpochSnapshot, b: &EpochSnapshot, ctx: &str) {
    assert_eq!(
        LinearSketch::to_bytes(a.sketch()),
        LinearSketch::to_bytes(b.sketch()),
        "sketch bytes diverged: {ctx}"
    );
    assert_eq!(a.net_edges().entries(), b.net_edges().entries(), "{ctx}");
    let (fa, fb) = (a.forest(), b.forest());
    assert_eq!(fa.result.edges, fb.result.edges, "forest diverged: {ctx}");
    assert_eq!(fa.labels, fb.labels, "labels diverged: {ctx}");
    assert_eq!(fa.num_components, fb.num_components, "{ctx}");
    let (oa, ob) = (a.oracle(), b.oracle());
    let n = a.num_vertices();
    for u in 0..n as Vertex {
        assert_eq!(
            oa.estimates_from(u),
            ob.estimates_from(u),
            "oracle row {u} diverged: {ctx}"
        );
    }
    let (ca, cb) = (a.cut_data(), b.cut_data());
    assert_eq!(ca.sparsifier_edges, cb.sparsifier_edges, "{ctx}");
    let bits = |l: &dsg_sparsifier::Laplacian| -> Vec<(Vertex, Vertex, u64)> {
        l.edge_triples()
            .iter()
            .map(|&(u, v, w)| (u, v, w.to_bits()))
            .collect()
    };
    assert_eq!(
        bits(&ca.laplacian),
        bits(&cb.laplacian),
        "laplacian weights diverged: {ctx}"
    );
    for v in 0..n as Vertex {
        assert_eq!(
            ca.laplacian.degree(v).to_bits(),
            cb.laplacian.degree(v).to_bits(),
            "degree {v} diverged: {ctx}"
        );
    }
}

fn lcg(s: &mut u64) -> u64 {
    *s = s
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *s >> 33
}

/// Deterministic churn batch: deletes ~`frac` of the live edges and
/// inserts about half as many fresh pairs, keeping `live` in sync.
fn churn_batch(live: &mut HashSet<Edge>, n: usize, frac: f64, rng: &mut u64) -> Vec<StreamUpdate> {
    let mut batch = Vec::new();
    let kill = ((live.len() as f64 * frac) as usize).max(1);
    let mut pool: Vec<Edge> = live.iter().copied().collect();
    pool.sort_unstable();
    for _ in 0..kill {
        let idx = (lcg(rng) as usize) % pool.len();
        let e = pool.swap_remove(idx);
        live.remove(&e);
        batch.push(StreamUpdate::delete(e.u(), e.v()));
    }
    let mut added = 0;
    while added < kill / 2 + 1 {
        let u = (lcg(rng) % n as u64) as Vertex;
        let v = (lcg(rng) % n as u64) as Vertex;
        if u == v {
            continue;
        }
        let e = Edge::new(u.min(v), u.max(v));
        if live.insert(e) {
            batch.push(StreamUpdate::insert(e.u(), e.v()));
            added += 1;
        }
    }
    batch
}

/// The tentpole contract end to end: N successive epochs advanced
/// incrementally (each patching the previous epoch's artifacts with the
/// segment diff) are bit-identical — sketch bytes, forest, labels,
/// oracle distances, cut Laplacian — to the same epochs each built from
/// scratch off the full stream, at several churn levels.
#[test]
fn incremental_epoch_chain_matches_scratch_builds() {
    let n = 30;
    let g = gen::erdos_renyi(n, 0.25, 31);
    for (threshold, frac) in [(0.5f64, 0.08f64), (0.9, 0.3)] {
        let config = GraphConfig::new(n)
            .seed(17)
            .shards(2)
            .batch_size(16)
            .churn_threshold(threshold);
        let reg = GraphRegistry::new();
        let chained = reg.create("g", config).unwrap();
        let mut cumulative: Vec<StreamUpdate> = GraphStream::insert_only(&g, 32).updates().to_vec();
        chained.apply(&cumulative).unwrap();
        touch_artifacts(&chained.advance_epoch());
        let mut live: HashSet<Edge> = g.edges().iter().copied().collect();
        let mut rng = 0xDEAD_BEEF ^ (frac.to_bits());
        for epoch in 0..4 {
            let batch = churn_batch(&mut live, n, frac, &mut rng);
            chained.apply(&batch).unwrap();
            cumulative.extend_from_slice(&batch);
            let snap = chained.advance_epoch();
            touch_artifacts(&snap);
            let scratch = epoch_of(config, &cumulative);
            assert_bit_identical(
                &snap,
                &scratch,
                &format!("chain epoch {epoch}, churn {frac}"),
            );
        }
        // The chain must actually have exercised the patch path: every
        // artifact of every post-warmup epoch fits the churn budget.
        let stats = chained.epoch_stats();
        assert_eq!(
            stats.incremental_builds, 12,
            "4 epochs x 3 artifacts patched (threshold {threshold}, churn {frac})"
        );
        assert!(stats.last_patch_nanos > 0, "patch duration recorded");
    }
}

/// The fallback boundary is sharp and harmless: a diff exactly at
/// `churn_threshold x live_edges` patches, one change more rebuilds, and
/// both produce bit-identical snapshots.
#[test]
fn churn_threshold_boundary_switches_patch_to_rebuild() {
    let n = 40;
    // 39 path edges + 27 star edges = 66 live edges, all exact in f64.
    let mut base = Vec::new();
    for i in 0..39u32 {
        base.push(StreamUpdate::insert(i, i + 1));
    }
    for j in 2..29u32 {
        base.push(StreamUpdate::insert(0, j));
    }
    let config = GraphConfig::new(n).seed(23).shards(2).churn_threshold(0.25);
    let reg = GraphRegistry::new();
    let served = reg.create("g", config).unwrap();
    served.apply(&base).unwrap();
    touch_artifacts(&served.advance_epoch());
    let full_warmup = served.epoch_stats().full_builds;

    // Exactly at the boundary: 9 deletions + 7 insertions = 16 changes,
    // 64 live edges, 16 <= 0.25 * 64 ⇒ patch.
    let mut cumulative = base.clone();
    let mut batch: Vec<StreamUpdate> = (0..9).map(|i| StreamUpdate::delete(i, i + 1)).collect();
    batch.extend((3..10).map(|j| StreamUpdate::insert(1, j)));
    served.apply(&batch).unwrap();
    cumulative.extend_from_slice(&batch);
    let at_boundary = served.advance_epoch();
    touch_artifacts(&at_boundary);
    let stats = served.epoch_stats();
    assert_eq!(stats.incremental_builds, 3, "boundary diff must patch");
    assert_eq!(
        stats.full_builds, full_warmup,
        "no fallback at the boundary"
    );
    assert_bit_identical(&at_boundary, &epoch_of(config, &cumulative), "at boundary");

    // One change over: 10 deletions + 7 insertions = 17 changes, 61 live
    // edges, 17 > 0.25 * 61 ⇒ full rebuild, still bit-identical.
    let mut batch: Vec<StreamUpdate> = (10..20).map(|i| StreamUpdate::delete(i, i + 1)).collect();
    batch.extend((4..11).map(|j| StreamUpdate::insert(2, j)));
    served.apply(&batch).unwrap();
    cumulative.extend_from_slice(&batch);
    let over = served.advance_epoch();
    touch_artifacts(&over);
    let stats = served.epoch_stats();
    assert_eq!(
        stats.incremental_builds, 3,
        "over-budget diff must not patch"
    );
    assert_eq!(
        stats.full_builds,
        full_warmup + 3,
        "fallback past the boundary"
    );
    assert_bit_identical(&over, &epoch_of(config, &cumulative), "over boundary");
}

/// Invalid deltas are typed errors too (the compacted log can only cancel
/// ±1 steps).
#[test]
fn invalid_deltas_are_typed_errors() {
    let reg = GraphRegistry::new();
    let served = reg.create("g", GraphConfig::new(8)).unwrap();
    let mut up = StreamUpdate::insert(0, 1);
    up.delta = 3;
    assert!(matches!(
        served.apply(&[up]),
        Err(ServiceError::InvalidDelta { delta: 3 })
    ));
    assert_eq!(served.advance_epoch().total_updates(), 0);
}
