//! Live-socket smoke test of the admin endpoint: bind an ephemeral port,
//! scrape every route over real TCP, and validate the JSON routes
//! *structurally* with `dsg_util::json` — the same checks CI runs.

#![allow(clippy::unwrap_used)] // test code may unwrap freely

use dsg_graph::StreamUpdate;
use dsg_service::{
    AdminServer, AuditConfig, FlightRecorder, GraphConfig, GraphRegistry, MetricRegistry, Query,
    QueryService,
};
use dsg_util::json::{parse, JsonValue};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn scrape(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status = raw.split_whitespace().nth(1).unwrap().parse().unwrap();
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap();
    (status, body)
}

#[test]
fn admin_endpoint_serves_scrapable_metrics_and_valid_trace_json() {
    let registry = Arc::new(GraphRegistry::with_observability(
        Arc::new(MetricRegistry::new()),
        FlightRecorder::with_capacity(1024),
    ));
    let g = registry
        .create("social", GraphConfig::new(32).shards(2))
        .unwrap();
    g.apply(
        &(0..20)
            .map(|v| StreamUpdate::insert(v, v + 1))
            .collect::<Vec<_>>(),
    )
    .unwrap();
    g.advance_epoch();

    // Push one query through the pool with an always-firing watchdog so
    // `/tracez` has both events and an incident to render.
    let pool = QueryService::start(Arc::clone(&registry), 1);
    pool.set_slow_query_threshold(Duration::from_nanos(1));
    let ticket = pool.submit("social", Query::SameComponent(0, 5));
    ticket.wait().unwrap();
    pool.shutdown();

    let server = AdminServer::bind("127.0.0.1:0", Arc::clone(&registry)).unwrap();
    let addr = server.local_addr();

    let (status, body) = scrape(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(!body.is_empty());

    let (status, body) = scrape(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(!body.is_empty(), "/metrics body must be non-empty");
    assert!(body.contains("dsg_engine_batches_sent_total"));
    assert!(body.contains("graph=\"social\""));

    // /epochz parses as a JSON array of per-tenant objects.
    let (status, body) = scrape(addr, "/epochz");
    assert_eq!(status, 200);
    let epochz = parse(&body).expect("/epochz must be valid JSON");
    let tenants = epochz.as_array().expect("/epochz must be an array");
    assert_eq!(tenants.len(), 1);
    let t = &tenants[0];
    assert_eq!(t.get("graph").and_then(JsonValue::as_str), Some("social"));
    assert_eq!(t.get("epoch").and_then(JsonValue::as_u64), Some(1));
    assert_eq!(t.get("total_updates").and_then(JsonValue::as_u64), Some(20));
    assert!(t.get("net_edges").and_then(JsonValue::as_u64).unwrap() > 0);

    // /tracez parses as Chrome trace_event JSON with well-formed events.
    let (status, body) = scrape(addr, "/tracez");
    assert_eq!(status, 200);
    let tracez = parse(&body).expect("/tracez must be valid JSON");
    assert_eq!(
        tracez.get("displayTimeUnit").and_then(JsonValue::as_str),
        Some("ns")
    );
    let events = tracez
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents must be an array");
    assert!(!events.is_empty(), "the workload above must leave events");
    let mut names = std::collections::BTreeSet::new();
    for e in events {
        let name = e.get("name").and_then(JsonValue::as_str).expect("name");
        names.insert(name.to_string());
        assert_eq!(e.get("ph").and_then(JsonValue::as_str), Some("i"));
        assert!(e.get("ts").and_then(JsonValue::as_f64).is_some(), "ts");
        let args = e.get("args").expect("args object");
        assert!(args.get("trace_id").and_then(JsonValue::as_u64).is_some());
        assert!(args.get("nanos").and_then(JsonValue::as_u64).is_some());
    }
    for expected in [
        "query_submit",
        "query_execute",
        "epoch_publish",
        "slow_query",
    ] {
        assert!(names.contains(expected), "missing event kind {expected}");
    }
    let incidents = tracez
        .get("incidents")
        .and_then(JsonValue::as_array)
        .expect("incidents must be an array");
    assert!(!incidents.is_empty(), "the 1ns watchdog must have fired");
    assert!(incidents[0]
        .get("label")
        .and_then(JsonValue::as_str)
        .unwrap()
        .starts_with("social:"));

    server.shutdown();
}

/// `/qualityz` answers on both sides of auditor installation: the
/// disabled stub without one, and a populated report (with the sampled
/// queries accounted for) once the auditor has run.
#[test]
fn qualityz_reports_disabled_then_audited_state() {
    let registry = Arc::new(GraphRegistry::with_observability(
        Arc::new(MetricRegistry::new()),
        FlightRecorder::with_capacity(1024),
    ));
    let g = registry
        .create("social", GraphConfig::new(16).shards(2))
        .unwrap();
    g.apply(
        &(0..12)
            .map(|v| StreamUpdate::insert(v, v + 1))
            .collect::<Vec<_>>(),
    )
    .unwrap();
    g.advance_epoch();
    let server = AdminServer::bind("127.0.0.1:0", Arc::clone(&registry)).unwrap();
    let addr = server.local_addr();

    // No auditor installed: the route still answers, explicitly disabled.
    let (status, body) = scrape(addr, "/qualityz");
    assert_eq!(status, 200);
    let doc = parse(&body).expect("/qualityz must be valid JSON when disabled");
    assert_eq!(doc.get("enabled").and_then(JsonValue::as_bool), Some(false));

    // Audit every query, serve a few, and the scrape reflects them.
    let auditor = registry.install_auditor(AuditConfig {
        sample_every: 1,
        ..AuditConfig::default()
    });
    let pool = QueryService::start(Arc::clone(&registry), 1);
    for v in 1..6 {
        pool.query_blocking("social", Query::Distance(0, v))
            .unwrap();
    }
    pool.shutdown();
    auditor.flush();

    let (status, body) = scrape(addr, "/qualityz");
    assert_eq!(status, 200);
    let doc = parse(&body).expect("/qualityz must be valid JSON when enabled");
    assert_eq!(doc.get("enabled").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(doc.get("sample_every").and_then(JsonValue::as_u64), Some(1));
    let tenants = doc.get("tenants").and_then(JsonValue::as_array).unwrap();
    let tenant = tenants
        .iter()
        .find(|t| t.get("graph").and_then(JsonValue::as_str) == Some("social"))
        .expect("audited tenant listed");
    assert!(tenant.get("samples").and_then(JsonValue::as_u64).unwrap() >= 5);
    assert_eq!(
        tenant.get("violations").and_then(JsonValue::as_u64),
        Some(0),
        "an honest path graph must audit clean: {body}"
    );

    server.shutdown();
}

/// Many clients scraping every route at once: each connection gets a
/// complete, well-formed response — no torn bodies, no wedged accepts.
#[test]
fn concurrent_scrapes_all_get_complete_responses() {
    let registry = Arc::new(GraphRegistry::with_observability(
        Arc::new(MetricRegistry::new()),
        FlightRecorder::with_capacity(1024),
    ));
    let g = registry.create("social", GraphConfig::new(16)).unwrap();
    g.insert(0, 1).unwrap();
    g.advance_epoch();
    let server = AdminServer::bind("127.0.0.1:0", Arc::clone(&registry)).unwrap();
    let addr = server.local_addr();

    let routes = ["/metrics", "/healthz", "/epochz", "/tracez", "/qualityz"];
    let handles: Vec<_> = (0..4)
        .flat_map(|_| routes)
        .map(|route| {
            std::thread::spawn(move || {
                let (status, body) = scrape(addr, route);
                assert_eq!(status, 200, "route {route} must answer under load");
                assert!(!body.is_empty(), "route {route} body must be complete");
                if route != "/metrics" && route != "/healthz" {
                    parse(&body).expect("JSON routes must stay well-formed");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no scraper may panic");
    }
    server.shutdown();
}

/// Hostile request lines — binary garbage, non-GET methods, a request
/// line past the 4 KiB cap, and a half-open client that sends nothing —
/// are bounded and rejected, and the server keeps serving afterwards.
#[test]
fn hostile_request_lines_are_rejected_and_server_survives() {
    let registry = Arc::new(GraphRegistry::new());
    let server = AdminServer::bind("127.0.0.1:0", registry).unwrap();
    let addr = server.local_addr();

    let send_raw = |payload: &[u8]| -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        // The server may reset mid-write on oversized input; that is a
        // rejection too, so the write result is folded into the read.
        let _ = stream.write_all(payload);
        let mut raw = String::new();
        let _ = stream.read_to_string(&mut raw);
        raw
    };

    // Binary garbage and a non-GET method both get an explicit 400.
    assert!(send_raw(b"\x00\xff\x13\x37garbage\r\n\r\n").starts_with("HTTP/1.1 400"));
    assert!(send_raw(b"DELETE /metrics HTTP/1.1\r\n\r\n").starts_with("HTTP/1.1 400"));

    // A request line larger than the 4 KiB read cap (no CRLF inside the
    // cap) is cut off rather than buffered without bound: the client
    // sees a 400 — or a reset, when the server's close-with-unread-data
    // races the response. Either way the line was bounded.
    let oversized = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(8 * 1024));
    let raw = send_raw(oversized.as_bytes());
    assert!(
        raw.is_empty() || raw.starts_with("HTTP/1.1 400"),
        "oversized request line must be rejected, got: {raw}"
    );

    // A half-open client that never writes is dropped by the read
    // timeout instead of wedging the accept loop.
    let idle = TcpStream::connect(addr).unwrap();

    // After all of the above the server still answers honest requests.
    let (status, body) = scrape(addr, "/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    drop(idle);
    server.shutdown();
}
