//! Property tests for the hashing substrate: field axioms, hash family
//! determinism, and sampler distributional sanity.

use dsg_hash::{derive_seed, field, KWiseHash, NisanPrg, SeedTree, SubsetSampler};
use proptest::prelude::*;

fn felt() -> impl Strategy<Value = u64> {
    0u64..field::P
}

proptest! {
    #[test]
    fn field_addition_group(a in felt(), b in felt(), c in felt()) {
        // Associativity, commutativity, identity, inverse.
        prop_assert_eq!(field::add(field::add(a, b), c), field::add(a, field::add(b, c)));
        prop_assert_eq!(field::add(a, b), field::add(b, a));
        prop_assert_eq!(field::add(a, 0), a);
        prop_assert_eq!(field::add(a, field::sub(0, a)), 0);
    }

    #[test]
    fn field_multiplication_ring(a in felt(), b in felt(), c in felt()) {
        prop_assert_eq!(field::mul(field::mul(a, b), c), field::mul(a, field::mul(b, c)));
        prop_assert_eq!(field::mul(a, b), field::mul(b, a));
        prop_assert_eq!(field::mul(a, 1), a);
        // Distributivity.
        prop_assert_eq!(
            field::mul(a, field::add(b, c)),
            field::add(field::mul(a, b), field::mul(a, c))
        );
    }

    #[test]
    fn field_inverse_is_inverse(a in 1u64..field::P) {
        prop_assert_eq!(field::mul(a, field::inv(a)), 1);
    }

    #[test]
    fn pow_is_repeated_multiplication(a in felt(), e in 0u64..32) {
        let mut expect = 1u64;
        for _ in 0..e {
            expect = field::mul(expect, a);
        }
        prop_assert_eq!(field::pow(a, e), expect);
    }

    #[test]
    fn kwise_hash_deterministic_and_in_range(k in 1usize..8, seed in any::<u64>(), x in any::<u64>()) {
        let h1 = KWiseHash::new(k, seed);
        let h2 = KWiseHash::new(k, seed);
        let v = h1.hash(x);
        prop_assert_eq!(v, h2.hash(x));
        prop_assert!(v < field::P);
        prop_assert!(h1.hash_unit(x) < 1.0);
    }

    #[test]
    fn hash_below_stays_below(m in 1u64..1_000_000, x in any::<u64>(), seed in any::<u64>()) {
        let h = KWiseHash::new(3, seed);
        prop_assert!(h.hash_below(x, m) < m);
    }

    #[test]
    fn seed_tree_paths_are_consistent(seed in any::<u64>(), a in any::<u64>(), b in any::<u64>()) {
        let root = SeedTree::new(seed);
        prop_assert_eq!(root.child(a).child(b).seed(), root.path(&[a, b]).seed());
        if a != b {
            prop_assert_ne!(root.child(a).seed(), root.child(b).seed());
        }
    }

    #[test]
    fn derive_seed_depends_on_every_label(seed in any::<u64>(), path in prop::collection::vec(any::<u64>(), 1..5), flip in 0usize..5) {
        let base = derive_seed(seed, &path);
        let mut mutated = path.clone();
        let i = flip % path.len();
        mutated[i] = mutated[i].wrapping_add(1);
        prop_assert_ne!(base, derive_seed(seed, &mutated));
    }

    #[test]
    fn subset_sampler_membership_deterministic(seed in any::<u64>(), rate in 0.0f64..1.0, x in any::<u64>()) {
        let s1 = SubsetSampler::new(seed, rate);
        let s2 = SubsetSampler::new(seed, rate);
        prop_assert_eq!(s1.contains(x), s2.contains(x));
    }

    #[test]
    fn nisan_blocks_in_field_range(levels in 1u32..12, seed in any::<u64>(), frac in 0.0f64..1.0) {
        let g = NisanPrg::new(levels, seed);
        let idx = ((g.num_blocks() - 1) as f64 * frac) as u64;
        prop_assert!(g.block(idx) < field::P);
    }
}

/// Chi-square-flavored uniformity check: not a proptest (needs many
/// samples), but a distributional property worth pinning.
#[test]
fn kwise_hash_bucket_chi_square() {
    let h = KWiseHash::new(4, 2024);
    let buckets = 64u64;
    let samples = 64_000u64;
    let mut counts = vec![0f64; buckets as usize];
    for x in 0..samples {
        counts[h.hash_below(x, buckets) as usize] += 1.0;
    }
    let expected = samples as f64 / buckets as f64;
    let chi2: f64 = counts
        .iter()
        .map(|c| (c - expected).powi(2) / expected)
        .sum();
    // 63 degrees of freedom: mean 63, sd ~11.2; allow 6 sigma.
    assert!(chi2 < 63.0 + 6.0 * 11.2, "chi2={chi2}");
}

/// Pairwise independence smoke test: the joint distribution of
/// (h(x) mod 2, h(y) mod 2) is near-uniform over 4 cells.
#[test]
fn kwise_hash_pairwise_bits() {
    let trials = 4000;
    let mut cells = [0usize; 4];
    for seed in 0..trials {
        let h = KWiseHash::new(2, seed);
        let a = (h.hash(12345) & 1) as usize;
        let b = (h.hash(67890) & 1) as usize;
        cells[a * 2 + b] += 1;
    }
    for (i, &c) in cells.iter().enumerate() {
        let expect = trials as usize / 4;
        assert!(c.abs_diff(expect) < expect / 4, "cell {i}: {c} vs {expect}");
    }
}
