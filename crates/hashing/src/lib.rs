//! Seeded hashing and pseudorandomness for dynamic-stream graph sketching.
//!
//! Every algorithm in Kapralov–Woodruff's "Spanners and Sparsifiers in
//! Dynamic Streams" (PODC 2014) consumes structured randomness:
//!
//! * the cluster center sets `C_i` are vertex samples at rate `n^{-i/k}`;
//! * the edge sets `E_j` and vertex sets `Y_j`, `Z_r` are samples at rate
//!   `2^{-j}`;
//! * every `SKETCH^{r,j}` instance uses "random bits that are a function of
//!   `(r, j)`, and independent for different `(r, j)`".
//!
//! This crate provides those primitives from scratch:
//!
//! * [`field`] — arithmetic in the Mersenne-prime field `GF(2^61 - 1)`;
//! * [`kwise`] — `k`-wise independent polynomial hash families over that
//!   field (the paper notes `O(log n)`-wise independence suffices for the
//!   sets `E_j`);
//! * [`rng`] — `SplitMix64` mixing and hierarchical seed derivation
//!   ([`SeedTree`]), so the whole system is reproducible from one `u64`;
//! * [`subset`] — Bernoulli subset samplers implementing the membership
//!   predicates above without materializing the sets;
//! * [`nisan`] — a Nisan-style pseudorandom generator, the derandomization
//!   tool Section 6.3 of the paper invokes to avoid `Ω(n^2)` stored random
//!   bits.
//!
//! # Examples
//!
//! ```
//! use dsg_hash::{SeedTree, subset::SubsetSampler};
//!
//! let root = SeedTree::new(42);
//! // The paper's E_j: each potential edge kept with probability 2^-j.
//! let e3 = SubsetSampler::at_rate_pow2(root.child(7).seed(), 3);
//! let kept = (0u64..10_000).filter(|&x| e3.contains(x)).count();
//! assert!((kept as f64 - 1250.0).abs() < 200.0);
//! ```

pub mod field;
pub mod kwise;
pub mod nisan;
pub mod rng;
pub mod subset;

pub use kwise::KWiseHash;
pub use nisan::NisanPrg;
pub use rng::{derive_seed, SeedTree, SplitMix64};
pub use subset::SubsetSampler;
