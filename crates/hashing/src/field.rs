//! Arithmetic in the Mersenne-prime field `GF(p)` with `p = 2^61 - 1`.
//!
//! Polynomial hash families need a prime field whose size exceeds every
//! universe we hash (vertex ids, `C(n,2)` edge coordinates, 61-bit packed
//! keys). `2^61 - 1` is the classic choice: reduction is two shifts and an
//! add, and products of two field elements fit in `u128`.
//!
//! All functions operate on canonical representatives in `[0, p)`.

/// The field modulus `2^61 - 1` (a Mersenne prime).
pub const P: u64 = (1 << 61) - 1;

/// Reduces an arbitrary `u128` to `[0, p)`.
///
/// # Examples
///
/// ```
/// use dsg_hash::field::{reduce, P};
/// assert_eq!(reduce(P as u128), 0);
/// assert_eq!(reduce((P as u128) + 5), 5);
/// ```
#[inline]
pub fn reduce(x: u128) -> u64 {
    // Fold the high bits twice: x = hi * 2^61 + lo ≡ hi + lo (mod p).
    let lo = (x & (P as u128)) as u64;
    let hi = x >> 61;
    let folded = lo as u128 + hi;
    let lo2 = (folded & (P as u128)) as u64;
    let hi2 = (folded >> 61) as u64;
    let mut r = lo2 + hi2;
    if r >= P {
        r -= P;
    }
    r
}

/// Canonicalizes a `u64` into `[0, p)`.
#[inline]
pub fn canon(x: u64) -> u64 {
    reduce(x as u128)
}

/// Field addition.
#[inline]
pub fn add(a: u64, b: u64) -> u64 {
    debug_assert!(a < P && b < P);
    let mut r = a + b;
    if r >= P {
        r -= P;
    }
    r
}

/// Field subtraction.
#[inline]
pub fn sub(a: u64, b: u64) -> u64 {
    debug_assert!(a < P && b < P);
    if a >= b {
        a - b
    } else {
        a + P - b
    }
}

/// Field multiplication.
#[inline]
pub fn mul(a: u64, b: u64) -> u64 {
    debug_assert!(a < P && b < P);
    reduce(a as u128 * b as u128)
}

/// Field exponentiation by squaring.
///
/// # Examples
///
/// ```
/// use dsg_hash::field::{pow, P};
/// assert_eq!(pow(2, 61), 1); // 2^61 ≡ 2^61 - P = 1 (mod p)
/// assert_eq!(pow(5, 0), 1);
/// ```
pub fn pow(mut base: u64, mut exp: u64) -> u64 {
    base = canon(base);
    let mut acc = 1u64;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul(acc, base);
        }
        base = mul(base, base);
        exp >>= 1;
    }
    acc
}

/// Multiplicative inverse via Fermat's little theorem.
///
/// # Panics
///
/// Panics if `a ≡ 0 (mod p)`: zero has no inverse.
pub fn inv(a: u64) -> u64 {
    let a = canon(a);
    assert_ne!(a, 0, "zero has no multiplicative inverse");
    pow(a, P - 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_handles_extremes() {
        assert_eq!(reduce(0), 0);
        assert_eq!(reduce(P as u128 - 1), P - 1);
        assert_eq!(reduce(P as u128), 0);
        assert_eq!(reduce(u128::MAX), ((u128::MAX) % (P as u128)) as u64);
    }

    #[test]
    fn add_wraps() {
        assert_eq!(add(P - 1, 1), 0);
        assert_eq!(add(P - 1, 2), 1);
        assert_eq!(add(0, 0), 0);
    }

    #[test]
    fn sub_wraps() {
        assert_eq!(sub(0, 1), P - 1);
        assert_eq!(sub(5, 5), 0);
        assert_eq!(sub(7, 3), 4);
    }

    #[test]
    fn mul_matches_u128_mod() {
        let cases = [
            (2u64, 3u64),
            (P - 1, P - 1),
            (1 << 60, 1 << 60),
            (12345, 67890),
        ];
        for (a, b) in cases {
            let expect = ((a as u128 * b as u128) % P as u128) as u64;
            assert_eq!(mul(a, b), expect, "mul({a},{b})");
        }
    }

    #[test]
    fn pow_basic_identities() {
        assert_eq!(pow(0, 5), 0);
        assert_eq!(pow(0, 0), 1); // empty product convention
        assert_eq!(pow(7, 1), 7);
        assert_eq!(pow(3, 4), 81);
    }

    #[test]
    fn fermat_inverse() {
        for a in [1u64, 2, 3, 12345, P - 1] {
            assert_eq!(mul(a, inv(a)), 1, "a={a}");
        }
    }

    #[test]
    #[should_panic(expected = "no multiplicative inverse")]
    fn zero_inverse_panics() {
        inv(0);
    }

    #[test]
    fn canon_reduces_large_u64() {
        assert_eq!(canon(u64::MAX), (u64::MAX as u128 % P as u128) as u64);
        assert_eq!(canon(P), 0);
    }
}
