//! A Nisan-style pseudorandom generator for space-bounded computation.
//!
//! Section 6.3 of the paper notes that the sparsification pipeline nominally
//! needs `Ω(n^2)` perfectly-random bits for its edge-set partitions, and
//! replaces them with Nisan's generator so the total space stays
//! `n^{1+o(1)}`. We implement the generator faithfully: seed length
//! `O(k·b)` for `2^k` output blocks of `b = 64` bits, with one pairwise
//! independent function per level.
//!
//! Nisan's recursion is `G_0(x) = x` and
//! `G_k(x) = G_{k-1}(x) ∘ G_{k-1}(h_k(x))`, which means the `i`-th output
//! block is obtained by applying `h_l` for every set bit `l` of `i` (reading
//! from the most significant level down). That gives `O(k)`-time random
//! access to any block with only the `k` hash functions stored — the
//! small-space property the paper relies on.
//!
//! In the rest of the workspace the production samplers use k-wise
//! independent families directly (see `DESIGN.md`); this module exists to
//! reproduce the derandomization component and is exercised by tests and the
//! experiment harness.

use crate::field;
use crate::kwise::KWiseHash;
use crate::rng::SplitMix64;
use dsg_util::SpaceUsage;

/// Nisan's pseudorandom generator with 61-bit blocks.
///
/// Stretches a seed of `levels + 1` field elements' worth of randomness into
/// `2^levels` blocks that fool space-bounded distinguishers.
///
/// # Examples
///
/// ```
/// use dsg_hash::NisanPrg;
///
/// let g = NisanPrg::new(10, 42); // 2^10 = 1024 blocks
/// assert_eq!(g.num_blocks(), 1024);
/// assert_eq!(g.block(17), g.block(17));
/// assert_ne!(g.block(17), g.block(18)); // whp
/// ```
#[derive(Debug, Clone)]
pub struct NisanPrg {
    /// One pairwise independent function per recursion level.
    hashes: Vec<KWiseHash>,
    /// The initial seed block `x`.
    x0: u64,
    levels: u32,
}

impl NisanPrg {
    /// Creates a generator producing `2^levels` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `levels > 62` (output index space would overflow `u64`).
    pub fn new(levels: u32, seed: u64) -> Self {
        assert!(levels <= 62, "levels {levels} too large");
        let mut rng = SplitMix64::new(seed);
        let x0 = rng.next_below(field::P);
        let hashes = (0..levels)
            .map(|l| KWiseHash::new(2, seed ^ (l as u64 + 1).wrapping_mul(0x9E37_79B9)))
            .collect();
        Self { hashes, x0, levels }
    }

    /// Number of 61-bit output blocks, `2^levels`.
    pub fn num_blocks(&self) -> u64 {
        1u64 << self.levels
    }

    /// Random access to output block `index`.
    ///
    /// Walks the recursion: level `l` (0 = outermost split) contributes
    /// `h_{levels-l}` when bit `levels-1-l` of `index` is set.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.num_blocks()`.
    pub fn block(&self, index: u64) -> u64 {
        assert!(
            index < self.num_blocks(),
            "block index {index} out of range"
        );
        let mut x = self.x0;
        // hashes[l] is h_{l+1}; the recursion applies the highest level first.
        for l in (0..self.levels).rev() {
            if index >> l & 1 == 1 {
                x = self.hashes[l as usize].hash(x);
            }
        }
        x
    }

    /// A pseudorandom bit: bit `index % 61` of block `index / 61`.
    ///
    /// # Panics
    ///
    /// Panics if the derived block index is out of range.
    pub fn bit(&self, index: u64) -> bool {
        let block = self.block(index / 61);
        block >> (index % 61) & 1 == 1
    }

    /// Seed length in bits: the quantity Nisan's theorem bounds by
    /// `O(k · b)` for `2^k` blocks of `b` bits.
    pub fn seed_bits(&self) -> usize {
        self.space_bits()
    }
}

impl SpaceUsage for NisanPrg {
    fn space_bytes(&self) -> usize {
        self.hashes
            .iter()
            .map(SpaceUsage::space_bytes)
            .sum::<usize>()
            + self.x0.space_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recursion_structure_matches_definition() {
        // For levels = 2: blocks are
        //   G_2(x) = G_1(x) ∘ G_1(h_2(x))
        //   G_1(y) = y ∘ h_1(y)
        // so block(0)=x, block(1)=h1(x), block(2)=h2(x), block(3)=h1(h2(x)).
        let g = NisanPrg::new(2, 77);
        let h1 = &g.hashes[0];
        let h2 = &g.hashes[1];
        let x = g.x0;
        assert_eq!(g.block(0), x);
        assert_eq!(g.block(1), h1.hash(x));
        assert_eq!(g.block(2), h2.hash(x));
        assert_eq!(g.block(3), h1.hash(h2.hash(x)));
    }

    #[test]
    fn seed_is_logarithmic_in_output() {
        let g = NisanPrg::new(20, 1); // 2^20 blocks = 2^26 bits of output
                                      // Seed: 20 pairwise hashes (2 coeffs each) + x0 = 41 words.
        assert_eq!(g.space_bytes(), (20 * 2 + 1) * 8);
        assert!(g.seed_bits() < 4096);
    }

    #[test]
    fn blocks_deterministic_and_distinct() {
        let g = NisanPrg::new(12, 5);
        let h = NisanPrg::new(12, 5);
        let mut seen = std::collections::HashSet::new();
        for i in 0..4096u64 {
            assert_eq!(g.block(i), h.block(i));
            seen.insert(g.block(i));
        }
        // Pairwise hashes give essentially no collisions at this scale.
        assert!(seen.len() > 4000, "only {} distinct blocks", seen.len());
    }

    #[test]
    fn bits_roughly_balanced() {
        let g = NisanPrg::new(10, 9);
        let ones = (0..32_768u64).filter(|&i| g.bit(i)).count();
        assert!((14_000..19_000).contains(&ones), "ones={ones}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_block_panics() {
        NisanPrg::new(3, 1).block(8);
    }

    #[test]
    fn different_seeds_differ() {
        let a = NisanPrg::new(6, 1);
        let b = NisanPrg::new(6, 2);
        let agree = (0..64u64).filter(|&i| a.block(i) == b.block(i)).count();
        assert!(agree < 4, "seeds produce nearly identical streams");
    }
}
