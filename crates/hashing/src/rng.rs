//! Seeded pseudorandom streams and hierarchical seed derivation.
//!
//! The paper indexes independent randomness by structured coordinates: the
//! sketch `S^{r,j}(u)` "uses random bits that are a function of `(r, j)`".
//! [`SeedTree`] reproduces that discipline: one root seed, with independent
//! child seeds derived along labelled paths, so two different paths yield
//! (computationally) independent generators and the same path always yields
//! the same bits.

/// `SplitMix64`: a tiny, high-quality 64-bit mixing PRNG.
///
/// Used for seed derivation and wherever a cheap deterministic stream of
/// 64-bit words is needed. Not a k-wise independent family — use
/// [`crate::KWiseHash`] when bounded independence matters for an analysis.
///
/// # Examples
///
/// ```
/// use dsg_hash::SplitMix64;
/// let mut a = SplitMix64::new(1);
/// let mut b = SplitMix64::new(1);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix(self.state)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // 128-bit multiply-shift; bias is < 2^-64, irrelevant at our scales.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a child seed from a root seed and a path of labels.
///
/// The derivation is a sponge over SplitMix64 mixing: collision of two
/// different paths would require a 64-bit mixing collision. Deterministic:
/// the same `(root, path)` always yields the same seed.
///
/// # Examples
///
/// ```
/// use dsg_hash::derive_seed;
/// assert_eq!(derive_seed(9, &[1, 2]), derive_seed(9, &[1, 2]));
/// assert_ne!(derive_seed(9, &[1, 2]), derive_seed(9, &[2, 1]));
/// ```
pub fn derive_seed(root: u64, path: &[u64]) -> u64 {
    let mut acc = mix(root ^ 0xA076_1D64_78BD_642F);
    for (depth, &label) in path.iter().enumerate() {
        acc = mix(acc
            ^ mix(label
                .wrapping_add(0x2545_F491_4F6C_DD1D)
                .wrapping_mul(depth as u64 + 1)));
    }
    acc
}

/// A node in a reproducible tree of seeds.
///
/// Children are addressed by `u64` tags; the same tag always produces the
/// same child. This mirrors the paper's convention that each sketch family
/// `(r, j)` has its own independent random bits, all ultimately derived from
/// one shared seed (which the distributed servers "agree upon").
///
/// # Examples
///
/// ```
/// use dsg_hash::SeedTree;
/// let root = SeedTree::new(7);
/// let a = root.child(1).child(3);
/// let b = root.path(&[1, 3]);
/// assert_eq!(a.seed(), b.seed());
/// assert_ne!(root.child(1).seed(), root.child(2).seed());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedTree {
    seed: u64,
}

impl SeedTree {
    /// Creates the root of a seed tree.
    pub fn new(seed: u64) -> Self {
        Self {
            seed: mix(seed ^ 0x9E6C_63D0_876A_68EE),
        }
    }

    /// The seed at this node.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The child node with the given tag.
    pub fn child(&self, tag: u64) -> SeedTree {
        SeedTree {
            seed: derive_seed(self.seed, &[tag]),
        }
    }

    /// Descends along a path of tags.
    pub fn path(&self, tags: &[u64]) -> SeedTree {
        let mut node = *self;
        for &t in tags {
            node = node.child(t);
        }
        node
    }

    /// A `SplitMix64` stream seeded at this node.
    pub fn rng(&self) -> SplitMix64 {
        SplitMix64::new(self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 0 from the canonical SplitMix64.
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(g.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut g = SplitMix64::new(123);
        for _ in 0..1000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut g = SplitMix64::new(5);
        for _ in 0..1000 {
            assert!(g.next_below(10) < 10);
        }
        assert_eq!(g.next_below(1), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn derive_seed_is_deterministic_and_path_sensitive() {
        assert_eq!(derive_seed(1, &[]), derive_seed(1, &[]));
        assert_ne!(derive_seed(1, &[]), derive_seed(2, &[]));
        assert_ne!(derive_seed(1, &[0]), derive_seed(1, &[]));
        assert_ne!(derive_seed(1, &[0, 1]), derive_seed(1, &[1, 0]));
        // A single path element must differ from its concatenation.
        assert_ne!(derive_seed(1, &[5]), derive_seed(1, &[5, 5]));
    }

    #[test]
    fn seed_tree_children_independent() {
        let root = SeedTree::new(99);
        let mut seen = std::collections::HashSet::new();
        for tag in 0..1000u64 {
            assert!(
                seen.insert(root.child(tag).seed()),
                "collision at tag {tag}"
            );
        }
    }

    #[test]
    fn seed_tree_path_matches_chained_children() {
        let root = SeedTree::new(4);
        assert_eq!(root.path(&[]).seed(), root.seed());
        assert_eq!(
            root.path(&[9, 9, 9]).seed(),
            root.child(9).child(9).child(9).seed()
        );
    }

    #[test]
    fn rough_uniformity_of_stream() {
        // Sanity check: mean of 10k uniform draws is near 0.5.
        let mut g = SplitMix64::new(2024);
        let mean: f64 = (0..10_000).map(|_| g.next_f64()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }
}
