//! Bernoulli subset samplers: implicit random subsets of a key universe.
//!
//! The paper's constructions never materialize their random sets — `C_i`
//! (vertices at rate `n^{-i/k}`), `E_j` (edge coordinates at rate `2^{-j}`),
//! `Y_j`, `Z_r` — they only ever evaluate a membership predicate while
//! processing an update. [`SubsetSampler`] provides exactly that predicate,
//! backed by an `O(log n)`-wise independent hash so Chernoff-style
//! concentration (Claim 11 of the paper) applies.

use crate::field;
use crate::kwise::KWiseHash;
use dsg_util::SpaceUsage;

/// Default independence used by samplers; `O(log n)`-wise independence is
/// what the paper's concentration arguments consume, and 32 covers every
/// universe a 64-bit machine can index.
pub const DEFAULT_INDEPENDENCE: usize = 32;

/// An implicit random subset of `u64` keys: each key is a member
/// independently (k-wise) with a fixed probability.
///
/// # Examples
///
/// ```
/// use dsg_hash::SubsetSampler;
///
/// let s = SubsetSampler::new(42, 0.25);
/// let members = (0..8000u64).filter(|&x| s.contains(x)).count();
/// assert!((members as f64 - 2000.0).abs() < 250.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubsetSampler {
    hash: KWiseHash,
    /// Membership iff `hash(x) < threshold`.
    threshold: u64,
}

impl SubsetSampler {
    /// Creates a sampler keeping each key with probability `rate`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1]` or is NaN.
    pub fn new(seed: u64, rate: f64) -> Self {
        Self::with_independence(seed, rate, DEFAULT_INDEPENDENCE)
    }

    /// Creates a sampler with an explicit independence parameter.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1]` or `independence == 0`.
    pub fn with_independence(seed: u64, rate: f64, independence: usize) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate {rate} outside [0, 1]");
        let threshold = (rate * field::P as f64).round() as u64;
        Self {
            hash: KWiseHash::new(independence, seed),
            threshold: threshold.min(field::P),
        }
    }

    /// Creates a sampler at rate `2^{-level}` (the paper's `E_j`, `Y_j`,
    /// `Z_r` sets).
    ///
    /// Levels of 61 or more produce the empty set (rate below `1/p`).
    pub fn at_rate_pow2(seed: u64, level: u32) -> Self {
        let threshold = if level >= 61 { 0 } else { field::P >> level };
        Self {
            hash: KWiseHash::new(DEFAULT_INDEPENDENCE, seed),
            threshold,
        }
    }

    /// Membership predicate.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        self.hash.hash(key) < self.threshold
    }

    /// The sampling rate as a fraction of the field size.
    pub fn rate(&self) -> f64 {
        self.threshold as f64 / field::P as f64
    }

    /// Materializes the members within `0..universe` (test/diagnostic use).
    pub fn members(&self, universe: u64) -> Vec<u64> {
        (0..universe).filter(|&x| self.contains(x)).collect()
    }
}

impl SpaceUsage for SubsetSampler {
    fn space_bytes(&self) -> usize {
        self.hash.space_bytes() + self.threshold.space_bytes()
    }
}

/// The hierarchy of samplers `E_0, …, E_L` at rates `2^0, …, 2^{-L}` used by
/// Algorithm 1 (where `L = log2 n^2`) and Algorithm 5.
///
/// Each level uses independent randomness, exactly as in the paper (the sets
/// are independent, *not* nested).
///
/// # Examples
///
/// ```
/// use dsg_hash::subset::GeometricSamplers;
///
/// let levels = GeometricSamplers::new(7, 10);
/// assert_eq!(levels.len(), 11); // levels 0..=10
/// assert!(levels.level(0).contains(123)); // rate 2^0 = 1: everything
/// ```
#[derive(Debug, Clone)]
pub struct GeometricSamplers {
    levels: Vec<SubsetSampler>,
}

impl GeometricSamplers {
    /// Creates samplers for levels `0..=max_level`.
    pub fn new(seed: u64, max_level: u32) -> Self {
        let root = crate::SeedTree::new(seed);
        let levels = (0..=max_level)
            .map(|j| SubsetSampler::at_rate_pow2(root.child(j as u64).seed(), j))
            .collect();
        Self { levels }
    }

    /// Number of levels (`max_level + 1`).
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether there are no levels.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// The sampler at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level >= self.len()`.
    pub fn level(&self, level: usize) -> &SubsetSampler {
        &self.levels[level]
    }

    /// Iterates over `(level, sampler)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &SubsetSampler)> {
        self.levels.iter().enumerate()
    }
}

impl SpaceUsage for GeometricSamplers {
    fn space_bytes(&self) -> usize {
        self.levels.iter().map(SpaceUsage::space_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_zero_and_one_are_trivial() {
        let empty = SubsetSampler::new(1, 0.0);
        let full = SubsetSampler::new(1, 1.0);
        for x in 0..1000u64 {
            assert!(!empty.contains(x));
            assert!(full.contains(x));
        }
    }

    #[test]
    fn empirical_rate_close_to_nominal() {
        for (seed, rate) in [(1u64, 0.5f64), (2, 0.1), (3, 0.01)] {
            let s = SubsetSampler::new(seed, rate);
            let n = 100_000u64;
            let hits = (0..n).filter(|&x| s.contains(x)).count() as f64;
            let expect = rate * n as f64;
            let slack = 5.0 * expect.sqrt() + 5.0;
            assert!(
                (hits - expect).abs() < slack,
                "rate {rate}: hits {hits} expect {expect}"
            );
        }
    }

    #[test]
    fn pow2_levels_halve() {
        let n = 200_000u64;
        let mut prev = n as f64;
        for level in 1..6u32 {
            let s = SubsetSampler::at_rate_pow2(level as u64 * 31, level);
            let hits = (0..n).filter(|&x| s.contains(x)).count() as f64;
            assert!(
                (hits - prev / 2.0).abs() < 6.0 * (prev / 2.0).sqrt(),
                "level {level}: {hits} vs {}",
                prev / 2.0
            );
            prev = hits;
        }
    }

    #[test]
    fn very_deep_level_is_empty() {
        let s = SubsetSampler::at_rate_pow2(1, 61);
        assert_eq!(s.members(100_000).len(), 0);
        assert_eq!(s.rate(), 0.0);
    }

    #[test]
    fn different_seeds_give_different_sets() {
        let a = SubsetSampler::new(1, 0.5);
        let b = SubsetSampler::new(2, 0.5);
        let universe = 1000u64;
        let same = (0..universe)
            .filter(|&x| a.contains(x) == b.contains(x))
            .count();
        assert!(
            same < 650,
            "sets nearly identical across seeds: {same}/1000 agree"
        );
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn invalid_rate_panics() {
        SubsetSampler::new(0, 1.5);
    }

    #[test]
    fn geometric_levels_independent() {
        let g = GeometricSamplers::new(11, 8);
        assert_eq!(g.len(), 9);
        // Levels are not nested: find a key in level 3 but not level 1.
        let found = (0..100_000u64).any(|x| g.level(3).contains(x) && !g.level(1).contains(x));
        assert!(found, "levels appear nested — they must be independent");
    }

    #[test]
    fn members_materializes_predicate() {
        let s = SubsetSampler::new(5, 0.3);
        let members = s.members(1000);
        for &m in &members {
            assert!(s.contains(m));
        }
        let count = (0..1000u64).filter(|&x| s.contains(x)).count();
        assert_eq!(members.len(), count);
    }
}
