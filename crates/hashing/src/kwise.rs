//! `k`-wise independent polynomial hash families over `GF(2^61 - 1)`.
//!
//! A degree-`(k-1)` polynomial with uniformly random coefficients evaluated
//! at distinct points yields `k`-wise independent values — the classical
//! Wegman–Carter construction. The paper needs `O(1)`-wise independence for
//! its sparse-recovery hashes (Theorem 8) and notes that `O(log n)`-wise
//! independence suffices to generate the edge samples `E_j` (Section 3.2).

use crate::field;
use crate::rng::SplitMix64;
use dsg_util::SpaceUsage;

/// A hash function drawn from a `k`-wise independent family.
///
/// Maps `u64` keys (canonicalized into the field) to values uniform in
/// `[0, 2^61 - 1)`. For fixed random coefficients, any `k` distinct keys
/// receive independent uniform values over the draw of the function.
///
/// # Examples
///
/// ```
/// use dsg_hash::KWiseHash;
///
/// let h = KWiseHash::new(4, 42);
/// assert_eq!(h.hash(17), h.hash(17)); // deterministic
/// let g = KWiseHash::new(4, 43);
/// assert_ne!(h.hash(17), g.hash(17)); // seed-sensitive (whp)
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KWiseHash {
    /// Polynomial coefficients, constant term first. `coeffs.len() == k`.
    coeffs: Vec<u64>,
}

impl KWiseHash {
    /// Draws a function from the `k`-wise independent family using `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k > 0, "independence parameter k must be at least 1");
        let mut rng = SplitMix64::new(seed);
        let coeffs = (0..k).map(|_| rng.next_below(field::P)).collect();
        Self { coeffs }
    }

    /// The independence parameter `k` of the family this was drawn from.
    pub fn independence(&self) -> usize {
        self.coeffs.len()
    }

    /// Evaluates the hash at `x`, returning a value in `[0, p)`.
    #[inline]
    pub fn hash(&self, x: u64) -> u64 {
        let x = field::canon(x);
        // Horner evaluation, highest-degree coefficient first.
        let mut acc = 0u64;
        for &c in self.coeffs.iter().rev() {
            acc = field::add(field::mul(acc, x), c);
        }
        acc
    }

    /// Evaluates the hash and reduces it into `[0, m)`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    #[inline]
    pub fn hash_below(&self, x: u64, m: u64) -> u64 {
        assert!(m > 0, "range bound must be positive");
        ((self.hash(x) as u128 * m as u128) >> 61) as u64
    }

    /// Evaluates the hash as a uniform fraction in `[0, 1)`.
    #[inline]
    pub fn hash_unit(&self, x: u64) -> f64 {
        self.hash(x) as f64 / field::P as f64
    }

    /// A ±1 value derived from the low bit of the hash (for CountSketch).
    #[inline]
    pub fn hash_sign(&self, x: u64) -> i64 {
        if self.hash(x) & 1 == 1 {
            1
        } else {
            -1
        }
    }
}

impl SpaceUsage for KWiseHash {
    fn space_bytes(&self) -> usize {
        self.coeffs.space_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn matches_naive_polynomial_evaluation() {
        let h = KWiseHash::new(5, 7);
        let x = 123_456u64;
        let mut expect = 0u64;
        let mut xp = 1u64;
        for &c in &h.coeffs {
            expect = field::add(expect, field::mul(c, xp));
            xp = field::mul(xp, x);
        }
        assert_eq!(h.hash(x), expect);
    }

    #[test]
    fn constant_family_is_constant() {
        let h = KWiseHash::new(1, 11);
        assert_eq!(h.hash(1), h.hash(2));
        assert_eq!(h.hash(3), h.hash(u64::MAX));
    }

    #[test]
    fn hash_below_in_range_and_roughly_uniform() {
        let h = KWiseHash::new(2, 3);
        let m = 16u64;
        let mut counts = HashMap::new();
        for x in 0..16_000u64 {
            let b = h.hash_below(x, m);
            assert!(b < m);
            *counts.entry(b).or_insert(0usize) += 1;
        }
        for b in 0..m {
            let c = counts.get(&b).copied().unwrap_or(0);
            assert!((700..1300).contains(&c), "bucket {b} has {c}");
        }
    }

    #[test]
    fn hash_unit_in_interval() {
        let h = KWiseHash::new(3, 5);
        for x in 0..100 {
            let u = h.hash_unit(x);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn sign_is_roughly_balanced() {
        let h = KWiseHash::new(4, 9);
        let pos = (0..10_000u64).filter(|&x| h.hash_sign(x) == 1).count();
        assert!((4_000..6_000).contains(&pos), "positives={pos}");
    }

    #[test]
    fn pairwise_collision_rate_is_small() {
        // 2-wise independence => collision probability 1/p per pair; with
        // 2000 keys and p = 2^61 - 1, zero collisions are expected.
        let h = KWiseHash::new(2, 21);
        let mut seen = std::collections::HashSet::new();
        for x in 0..2000u64 {
            assert!(seen.insert(h.hash(x)), "collision at {x}");
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_independence_panics() {
        KWiseHash::new(0, 1);
    }

    #[test]
    fn space_counts_coefficients() {
        let h = KWiseHash::new(8, 2);
        assert_eq!(h.space_bytes(), 64);
    }
}
