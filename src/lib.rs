//! Workspace facade crate: hosts the root integration tests and examples,
//! and re-exports every `dsg_*` crate under one roof. Library users should
//! normally depend on [`dsg_core`](dsg_core) (re-exported here as [`core`])
//! or the individual crates directly.

pub use dsg_agm as agm;
pub use dsg_core as core;
pub use dsg_engine as engine;
pub use dsg_graph as graph;
pub use dsg_hash as hash;
pub use dsg_lowerbound as lowerbound;
pub use dsg_service as service;
pub use dsg_sketch as sketch;
pub use dsg_spanner as spanner;
pub use dsg_sparsifier as sparsifier;
pub use dsg_store as store;
pub use dsg_telemetry as telemetry;
pub use dsg_util as util;
